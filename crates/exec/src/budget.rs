//! The process-wide core-token budget.
//!
//! The ROADMAP's `workers²` problem: under node-level parallelism every
//! data-parallel operator used to receive a full-width pool, so `w`
//! concurrently scheduled nodes could spawn `w × w` compute threads — and
//! two concurrent sessions doubled it again. [`CoreBudget`] fixes the
//! oversubscription at its root: one budget of `total` core tokens is
//! shared by *everything* that wants a thread — the service's concurrently
//! running iterations (one token each), the engine's frontier-dispatch
//! workers, and the chunk threads of data-parallel operators. A thread
//! does work only while a token backs it, so the number of working
//! threads in the process never exceeds the budget, no matter how many
//! tenants, sessions, or operators are in flight.
//!
//! Two acquisition modes keep this deadlock-free:
//!
//! * [`CoreBudget::acquire_one`] — *blocking*, used exactly once per
//!   running iteration (by the service's job runner). Leases are RAII and
//!   always released, so a blocked acquirer always eventually gets its
//!   token.
//! * [`CoreBudget::try_acquire`] — *non-blocking*, used for all extra
//!   parallelism (dispatch width, data-parallel chunks). A holder of the
//!   base token never blocks waiting for more; it degrades gracefully to
//!   inline execution when the budget is tight.
//!
//! Determinism contract: token grants influence only *how many threads*
//! execute a fixed, deterministically chunked job list — never the
//! chunking, combination order, or RNG seeding — so results are
//! byte-identical whether a caller is granted all, some, or none of the
//! tokens it asked for.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// A shared budget of core tokens (semaphore with peak tracking).
///
/// Leases may carry a **label** (the tenant that holds them):
/// [`CoreBudget::acquire_one_labeled`] attributes the base token of a
/// running iteration to its tenant, and
/// [`leased_for`](CoreBudget::leased_for) /
/// [`peak_leased_for`](CoreBudget::peak_leased_for) expose the per-label
/// current and high-water counts. This is the per-tenant executing-core
/// accounting the fair-share scheduler and `ServiceStats` report against;
/// unlabeled leases (engine dispatch width, data-parallel chunks, I/O
/// lanes) still count against the shared total only.
pub struct CoreBudget {
    total: usize,
    state: Mutex<Counters>,
    released: Condvar,
    /// Grant-notification hook: invoked after every release, outside the
    /// budget lock. A pooled runner installs one so it can *park* a
    /// session waiting for a token (promoting it when capacity frees)
    /// instead of blocking an OS thread in [`acquire_one`].
    notifier: Mutex<Option<ReleaseNotifier>>,
}

/// The callback [`CoreBudget::set_release_notifier`] installs.
pub type ReleaseNotifier = Arc<dyn Fn() + Send + Sync>;

impl std::fmt::Debug for CoreBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreBudget")
            .field("total", &self.total)
            .field("leased", &self.leased())
            .finish()
    }
}

#[derive(Debug, Default)]
struct LabelCount {
    leased: usize,
    peak: usize,
}

#[derive(Debug)]
struct Counters {
    leased: usize,
    peak: usize,
    by_label: HashMap<String, LabelCount>,
}

impl CoreBudget {
    /// A budget of `total` tokens (minimum 1).
    pub fn new(total: usize) -> CoreBudget {
        CoreBudget {
            total: total.max(1),
            state: Mutex::new(Counters { leased: 0, peak: 0, by_label: HashMap::new() }),
            released: Condvar::new(),
            notifier: Mutex::new(None),
        }
    }

    /// Install (or clear) the release-notification hook. The callback
    /// runs after *every* token release, with no budget lock held, so it
    /// may freely call back into [`try_acquire_one`](Self::try_acquire_one)
    /// and friends. At most one notifier is active; installing replaces
    /// the previous one.
    pub fn set_release_notifier(&self, notifier: Option<ReleaseNotifier>) {
        *self.notifier.lock().expect("budget notifier poisoned") = notifier;
    }

    /// Total tokens in the budget.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Tokens currently leased.
    pub fn leased(&self) -> usize {
        self.state.lock().expect("budget poisoned").leased
    }

    /// High-water mark of simultaneously leased tokens.
    pub fn peak_leased(&self) -> usize {
        self.state.lock().expect("budget poisoned").peak
    }

    /// Tokens currently leased under `label`.
    pub fn leased_for(&self, label: &str) -> usize {
        self.state.lock().expect("budget poisoned").by_label.get(label).map_or(0, |c| c.leased)
    }

    /// High-water mark of tokens simultaneously leased under `label`.
    pub fn peak_leased_for(&self, label: &str) -> usize {
        self.state.lock().expect("budget poisoned").by_label.get(label).map_or(0, |c| c.peak)
    }

    /// Block until one token is free, then lease it.
    ///
    /// This is the *base* lease of a running iteration. To stay
    /// deadlock-free, callers must never hold one base lease while
    /// blocking for another — all further parallelism goes through the
    /// non-blocking [`try_acquire`](Self::try_acquire).
    pub fn acquire_one(&self) -> CoreLease<'_> {
        self.acquire_one_inner(None)
    }

    /// [`acquire_one`](Self::acquire_one), attributed to `label` in the
    /// per-label accounting (the service labels base tokens with the
    /// owning tenant).
    pub fn acquire_one_labeled(&self, label: &str) -> CoreLease<'_> {
        self.acquire_one_inner(Some(label.to_string()))
    }

    fn acquire_one_inner(&self, label: Option<String>) -> CoreLease<'_> {
        let mut state = self.state.lock().expect("budget poisoned");
        while state.leased >= self.total {
            state = self.released.wait(state).expect("budget poisoned");
        }
        state.leased += 1;
        state.peak = state.peak.max(state.leased);
        if let Some(label) = &label {
            let count = state.by_label.entry(label.clone()).or_default();
            count.leased += 1;
            count.peak = count.peak.max(count.leased);
        }
        CoreLease { budget: self, tokens: 1, label }
    }

    /// Lease exactly one token without blocking; `None` when the budget
    /// is exhausted. The convenience spelling I/O lanes (prefetchers,
    /// background writers) use to account for themselves opportunistically.
    pub fn try_acquire_one(&self) -> Option<CoreLease<'_>> {
        let lease = self.try_acquire(1);
        (lease.tokens() == 1).then_some(lease)
    }

    /// Non-blocking, label-attributed counterpart of
    /// [`acquire_one_labeled`](Self::acquire_one_labeled), returning an
    /// *owned* lease (`Arc`-backed, so it can be parked with a waiting
    /// session and released from whichever worker thread resumes it).
    /// `None` when the budget is exhausted — the pooled runner's cue to
    /// park the session on the grant queue instead of blocking a thread.
    pub fn try_acquire_one_labeled_owned(self: &Arc<Self>, label: &str) -> Option<OwnedCoreLease> {
        let mut state = self.state.lock().expect("budget poisoned");
        if state.leased >= self.total {
            return None;
        }
        state.leased += 1;
        state.peak = state.peak.max(state.leased);
        let count = state.by_label.entry(label.to_string()).or_default();
        count.leased += 1;
        count.peak = count.peak.max(count.leased);
        drop(state);
        Some(OwnedCoreLease { budget: Arc::clone(self), tokens: 1, label: Some(label.to_string()) })
    }

    /// Lease up to `max` tokens without blocking; the lease may hold zero.
    pub fn try_acquire(&self, max: usize) -> CoreLease<'_> {
        let mut state = self.state.lock().expect("budget poisoned");
        let grant = max.min(self.total - state.leased);
        state.leased += grant;
        state.peak = state.peak.max(state.leased);
        CoreLease { budget: self, tokens: grant, label: None }
    }

    fn release(&self, tokens: usize, label: Option<&str>) {
        if tokens == 0 {
            return;
        }
        let mut state = self.state.lock().expect("budget poisoned");
        state.leased -= tokens;
        if let Some(label) = label {
            if let Some(count) = state.by_label.get_mut(label) {
                count.leased = count.leased.saturating_sub(tokens);
            }
        }
        drop(state);
        self.released.notify_all();
        // Grant notification runs dead last, with no budget lock held:
        // the callback may re-enter `try_acquire*` without deadlock, and
        // blocking acquirers were already woken through the condvar.
        let notifier = self.notifier.lock().expect("budget notifier poisoned").clone();
        if let Some(notifier) = notifier {
            notifier();
        }
    }
}

/// An RAII lease of `tokens` cores; released on drop.
#[derive(Debug)]
pub struct CoreLease<'a> {
    budget: &'a CoreBudget,
    tokens: usize,
    /// Attribution label (tenant) for per-label accounting, if any.
    label: Option<String>,
}

impl CoreLease<'_> {
    /// Number of tokens this lease holds (possibly zero).
    pub fn tokens(&self) -> usize {
        self.tokens
    }
}

impl Drop for CoreLease<'_> {
    fn drop(&mut self) {
        self.budget.release(self.tokens, self.label.as_deref());
    }
}

/// An owned (Arc-backed) RAII lease, for holders that outlive any one
/// stack frame — a parked session's granted token travels with the
/// session through the runner's queues and is released wherever the
/// session finishes. Identical accounting to [`CoreLease`].
#[derive(Debug)]
pub struct OwnedCoreLease {
    budget: Arc<CoreBudget>,
    tokens: usize,
    label: Option<String>,
}

impl OwnedCoreLease {
    /// Number of tokens this lease holds.
    pub fn tokens(&self) -> usize {
        self.tokens
    }
}

impl Drop for OwnedCoreLease {
    fn drop(&mut self) {
        self.budget.release(self.tokens, self.label.as_deref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_acquire_grants_up_to_available() {
        let budget = CoreBudget::new(4);
        let a = budget.try_acquire(3);
        assert_eq!(a.tokens(), 3);
        let b = budget.try_acquire(3);
        assert_eq!(b.tokens(), 1, "only one token left");
        let c = budget.try_acquire(5);
        assert_eq!(c.tokens(), 0, "empty lease instead of blocking");
        assert_eq!(budget.leased(), 4);
        drop(a);
        assert_eq!(budget.leased(), 1);
        assert_eq!(budget.try_acquire(10).tokens(), 3);
        assert_eq!(budget.peak_leased(), 4);
    }

    #[test]
    fn labeled_leases_track_per_label_current_and_peak() {
        let budget = CoreBudget::new(4);
        let a1 = budget.acquire_one_labeled("alice");
        let a2 = budget.acquire_one_labeled("alice");
        let b = budget.acquire_one_labeled("bob");
        let _anon = budget.try_acquire(1);
        assert_eq!(budget.leased_for("alice"), 2);
        assert_eq!(budget.leased_for("bob"), 1);
        assert_eq!(budget.leased_for("nobody"), 0);
        assert_eq!(budget.leased(), 4, "labels are attribution, not extra capacity");
        drop(a1);
        drop(b);
        assert_eq!(budget.leased_for("alice"), 1);
        assert_eq!(budget.leased_for("bob"), 0);
        assert_eq!(budget.peak_leased_for("alice"), 2, "per-label high-water mark sticks");
        assert_eq!(budget.peak_leased_for("bob"), 1);
        drop(a2);
        assert_eq!(budget.leased_for("alice"), 0);
        assert!(budget.peak_leased() <= budget.total());
    }

    #[test]
    fn owned_leases_account_and_release_like_borrowed_ones() {
        let budget = Arc::new(CoreBudget::new(2));
        let a = budget.try_acquire_one_labeled_owned("alice").expect("token free");
        assert_eq!(a.tokens(), 1);
        assert_eq!(budget.leased_for("alice"), 1);
        let b = budget.try_acquire_one_labeled_owned("bob").expect("token free");
        assert!(budget.try_acquire_one_labeled_owned("carol").is_none(), "budget exhausted");
        // Owned leases can outlive the acquiring frame and release from
        // another thread.
        let handle = std::thread::spawn(move || drop(a));
        handle.join().unwrap();
        drop(b);
        assert_eq!(budget.leased(), 0);
        assert_eq!(budget.leased_for("alice"), 0);
        assert_eq!(budget.peak_leased_for("alice"), 1);
    }

    #[test]
    fn release_notifier_fires_after_every_release_without_the_lock() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let budget = Arc::new(CoreBudget::new(1));
        let fired = Arc::new(AtomicUsize::new(0));
        {
            let budget = Arc::downgrade(&budget);
            let fired = Arc::clone(&fired);
            budget.upgrade().unwrap().set_release_notifier(Some(Arc::new(move || {
                // Re-entering the budget's lock from the notifier must
                // not deadlock: grant promotion calls try_acquire here.
                if let Some(budget) = budget.upgrade() {
                    assert_eq!(budget.leased(), 0);
                }
                fired.fetch_add(1, Ordering::SeqCst);
            })));
        }
        drop(budget.acquire_one());
        drop(budget.try_acquire(1));
        assert_eq!(fired.load(Ordering::SeqCst), 2, "one notification per release");
        budget.set_release_notifier(None);
        drop(budget.acquire_one());
        assert_eq!(fired.load(Ordering::SeqCst), 2, "cleared notifier stays silent");
    }

    #[test]
    fn zero_total_clamped_to_one() {
        let budget = CoreBudget::new(0);
        assert_eq!(budget.total(), 1);
        assert_eq!(budget.try_acquire(2).tokens(), 1);
    }

    #[test]
    fn acquire_one_blocks_until_released() {
        let budget = Arc::new(CoreBudget::new(1));
        let lease = budget.acquire_one();
        let waiter = {
            let budget = Arc::clone(&budget);
            std::thread::spawn(move || {
                let _lease = budget.acquire_one();
                std::time::Instant::now()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        let released_at = std::time::Instant::now();
        drop(lease);
        let acquired_at = waiter.join().expect("waiter panicked");
        assert!(acquired_at >= released_at, "second acquire must wait for the release");
        assert_eq!(budget.peak_leased(), 1, "never more than one token out");
    }

    #[test]
    fn leases_never_exceed_total_under_contention() {
        let budget = Arc::new(CoreBudget::new(3));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let budget = &budget;
                scope.spawn(move || {
                    for _ in 0..200 {
                        let base = budget.acquire_one();
                        let extra = budget.try_acquire(2);
                        assert!(budget.leased() <= budget.total());
                        drop(extra);
                        drop(base);
                    }
                });
            }
        });
        assert_eq!(budget.leased(), 0);
        assert!(budget.peak_leased() <= 3);
    }
}
