//! The in-memory intermediate cache.
//!
//! Spark uncaches via LRU; HELIX "improves upon the performance by actively
//! managing the set of data to evict from cache … Once an operator has
//! finished running, HELIX analyzes the DAG to uncache newly out-of-scope
//! nodes" (paper §5.4, Cache Pruning). [`ValueCache`] implements both
//! policies: `Eager` is HELIX's; `Lru` is the Spark-style baseline kept for
//! the ablation benchmarks.

use helix_data::{ByteSized, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Cache eviction policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// HELIX: values are evicted exactly when the engine declares them
    /// out-of-scope; the byte budget is a safety net only.
    Eager,
    /// Spark-like: values stay until the byte budget forces out the least
    /// recently used.
    Lru { budget_bytes: u64 },
}

struct Slot {
    value: Arc<Value>,
    bytes: u64,
    last_touch: u64,
}

/// A node-id-keyed cache of operator outputs.
pub struct ValueCache {
    policy: CachePolicy,
    slots: HashMap<u32, Slot>,
    clock: u64,
    bytes: u64,
}

impl ValueCache {
    /// New cache under `policy`.
    pub fn new(policy: CachePolicy) -> ValueCache {
        ValueCache { policy, slots: HashMap::new(), clock: 0, bytes: 0 }
    }

    /// Insert (or replace) the value for a node.
    pub fn put(&mut self, node: u32, value: Arc<Value>) {
        self.clock += 1;
        let bytes = value.byte_size();
        if let Some(old) = self.slots.insert(node, Slot { value, bytes, last_touch: self.clock })
        {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        if let CachePolicy::Lru { budget_bytes } = self.policy {
            self.evict_lru_to(budget_bytes, node);
        }
    }

    /// Fetch a value, updating recency.
    pub fn get(&mut self, node: u32) -> Option<Arc<Value>> {
        self.clock += 1;
        let clock = self.clock;
        self.slots.get_mut(&node).map(|slot| {
            slot.last_touch = clock;
            Arc::clone(&slot.value)
        })
    }

    /// Whether a node is resident.
    pub fn contains(&self, node: u32) -> bool {
        self.slots.contains_key(&node)
    }

    /// HELIX's eager eviction: drop a node the moment it goes out of scope.
    /// Returns the bytes freed.
    pub fn evict(&mut self, node: u32) -> u64 {
        match self.slots.remove(&node) {
            Some(slot) => {
                self.bytes -= slot.bytes;
                slot.bytes
            }
            None => 0,
        }
    }

    /// Evict everything (end of iteration).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.bytes = 0;
    }

    /// Resident bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of resident values.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The policy in force.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    fn evict_lru_to(&mut self, budget: u64, just_inserted: u32) {
        while self.bytes > budget && self.slots.len() > 1 {
            // Never evict the value we just inserted — its consumer is
            // about to run.
            let victim = self
                .slots
                .iter()
                .filter(|(id, _)| **id != just_inserted)
                .min_by_key(|(_, slot)| slot.last_touch)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    self.evict(id);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::Scalar;

    fn value_of_size(bytes: usize) -> Arc<Value> {
        Arc::new(Value::Scalar(Scalar::Text("x".repeat(bytes))))
    }

    #[test]
    fn put_get_evict_accounting() {
        let mut cache = ValueCache::new(CachePolicy::Eager);
        cache.put(1, value_of_size(100));
        cache.put(2, value_of_size(200));
        assert!(cache.contains(1));
        assert_eq!(cache.len(), 2);
        let before = cache.resident_bytes();
        assert!(before >= 300);
        let freed = cache.evict(1);
        assert!(freed >= 100);
        assert_eq!(cache.resident_bytes(), before - freed);
        assert!(!cache.contains(1));
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_some());
        assert_eq!(cache.evict(1), 0, "double evict is a no-op");
    }

    #[test]
    fn replacement_updates_bytes() {
        let mut cache = ValueCache::new(CachePolicy::Eager);
        cache.put(1, value_of_size(1000));
        let big = cache.resident_bytes();
        cache.put(1, value_of_size(10));
        assert!(cache.resident_bytes() < big);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Budget fits ~2 of the 3 values.
        let mut cache = ValueCache::new(CachePolicy::Lru { budget_bytes: 2_200 });
        cache.put(1, value_of_size(1000));
        cache.put(2, value_of_size(1000));
        // Touch 1 so 2 becomes the LRU victim.
        cache.get(1);
        cache.put(3, value_of_size(1000));
        assert!(cache.contains(1), "recently used survives");
        assert!(!cache.contains(2), "LRU victim evicted");
        assert!(cache.contains(3), "new value survives");
    }

    #[test]
    fn lru_never_evicts_fresh_insert() {
        let mut cache = ValueCache::new(CachePolicy::Lru { budget_bytes: 10 });
        cache.put(1, value_of_size(1000));
        assert!(cache.contains(1), "sole oversized value stays resident");
        cache.put(2, value_of_size(1000));
        assert!(cache.contains(2));
        assert!(!cache.contains(1));
    }

    #[test]
    fn eager_policy_ignores_budget() {
        let mut cache = ValueCache::new(CachePolicy::Eager);
        for i in 0..10 {
            cache.put(i, value_of_size(1_000));
        }
        assert_eq!(cache.len(), 10, "eager eviction is driven by scope, not size");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
    }
}
