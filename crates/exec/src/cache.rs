//! The in-memory intermediate cache.
//!
//! Spark uncaches via LRU; HELIX "improves upon the performance by actively
//! managing the set of data to evict from cache … Once an operator has
//! finished running, HELIX analyzes the DAG to uncache newly out-of-scope
//! nodes" (paper §5.4, Cache Pruning). [`ValueCache`] implements both
//! policies: `Eager` is HELIX's; `Lru` is the Spark-style baseline kept for
//! the ablation benchmarks.

use helix_data::{ByteSized, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cache eviction policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// HELIX: values are evicted exactly when the engine declares them
    /// out-of-scope; the byte budget is a safety net only.
    Eager,
    /// Spark-like: values stay until the byte budget forces out the least
    /// recently used.
    Lru { budget_bytes: u64 },
}

struct Slot {
    value: Arc<Value>,
    bytes: u64,
    last_touch: u64,
}

/// A node-id-keyed cache of operator outputs.
pub struct ValueCache {
    policy: CachePolicy,
    slots: HashMap<u32, Slot>,
    clock: u64,
    bytes: u64,
}

impl ValueCache {
    /// New cache under `policy`.
    pub fn new(policy: CachePolicy) -> ValueCache {
        ValueCache { policy, slots: HashMap::new(), clock: 0, bytes: 0 }
    }

    /// Insert (or replace) the value for a node.
    pub fn put(&mut self, node: u32, value: Arc<Value>) {
        self.clock += 1;
        let bytes = value.byte_size();
        if let Some(old) = self.slots.insert(node, Slot { value, bytes, last_touch: self.clock }) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        if let CachePolicy::Lru { budget_bytes } = self.policy {
            self.evict_lru_to(budget_bytes, node);
        }
    }

    /// Fetch a value, updating recency.
    pub fn get(&mut self, node: u32) -> Option<Arc<Value>> {
        self.clock += 1;
        let clock = self.clock;
        self.slots.get_mut(&node).map(|slot| {
            slot.last_touch = clock;
            Arc::clone(&slot.value)
        })
    }

    /// Whether a node is resident.
    pub fn contains(&self, node: u32) -> bool {
        self.slots.contains_key(&node)
    }

    /// HELIX's eager eviction: drop a node the moment it goes out of scope.
    /// Returns the bytes freed.
    pub fn evict(&mut self, node: u32) -> u64 {
        match self.slots.remove(&node) {
            Some(slot) => {
                self.bytes -= slot.bytes;
                slot.bytes
            }
            None => 0,
        }
    }

    /// Evict everything (end of iteration).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.bytes = 0;
    }

    /// Resident bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of resident values.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The policy in force.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    fn evict_lru_to(&mut self, budget: u64, just_inserted: u32) {
        while self.bytes > budget && self.slots.len() > 1 {
            // Never evict the value we just inserted — its consumer is
            // about to run.
            let victim = self
                .slots
                .iter()
                .filter(|(id, _)| **id != just_inserted)
                .min_by_key(|(_, slot)| slot.last_touch)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    self.evict(id);
                }
                None => break,
            }
        }
    }
}

/// A thread-safe cache for the parallel engine.
///
/// Concurrent workers `get` parent values and `put` their own outputs
/// while the coordinator evicts out-of-scope nodes, so the map is sharded
/// by node id (16 mutexes) with byte/count totals in atomics — reads of
/// different nodes never contend. Under `CachePolicy::Lru` the sharded
/// fast path cannot maintain a global recency order, so the cache falls
/// back to one [`ValueCache`] behind a single lock (the LRU baseline is
/// an ablation configuration, not the HELIX hot path).
pub struct SharedValueCache {
    policy: CachePolicy,
    inner: SharedImpl,
}

/// One shard: node id → (value, cached byte size).
type Shard = Mutex<HashMap<u32, (Arc<Value>, u64)>>;

enum SharedImpl {
    Sharded { shards: Vec<Shard>, bytes: AtomicU64, count: AtomicUsize },
    Locked(Mutex<ValueCache>),
}

const SHARD_COUNT: usize = 16;

impl SharedValueCache {
    /// New shared cache under `policy`.
    pub fn new(policy: CachePolicy) -> SharedValueCache {
        let inner = match policy {
            CachePolicy::Eager => SharedImpl::Sharded {
                shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect(),
                bytes: AtomicU64::new(0),
                count: AtomicUsize::new(0),
            },
            CachePolicy::Lru { .. } => SharedImpl::Locked(Mutex::new(ValueCache::new(policy))),
        };
        SharedValueCache { policy, inner }
    }

    fn shard(shards: &[Shard], node: u32) -> &Shard {
        &shards[node as usize % SHARD_COUNT]
    }

    /// Insert (or replace) the value for a node.
    pub fn put(&self, node: u32, value: Arc<Value>) {
        match &self.inner {
            SharedImpl::Sharded { shards, bytes, count } => {
                let size = value.byte_size();
                let mut shard = Self::shard(shards, node).lock().unwrap();
                if let Some((_, old)) = shard.insert(node, (value, size)) {
                    bytes.fetch_sub(old, Ordering::Relaxed);
                } else {
                    count.fetch_add(1, Ordering::Relaxed);
                }
                bytes.fetch_add(size, Ordering::Relaxed);
            }
            SharedImpl::Locked(cache) => cache.lock().unwrap().put(node, value),
        }
    }

    /// Fetch a value.
    pub fn get(&self, node: u32) -> Option<Arc<Value>> {
        match &self.inner {
            SharedImpl::Sharded { shards, .. } => {
                Self::shard(shards, node).lock().unwrap().get(&node).map(|(v, _)| Arc::clone(v))
            }
            SharedImpl::Locked(cache) => cache.lock().unwrap().get(node),
        }
    }

    /// Whether a node is resident.
    pub fn contains(&self, node: u32) -> bool {
        match &self.inner {
            SharedImpl::Sharded { shards, .. } => {
                Self::shard(shards, node).lock().unwrap().contains_key(&node)
            }
            SharedImpl::Locked(cache) => cache.lock().unwrap().contains(node),
        }
    }

    /// Eager out-of-scope eviction; returns the bytes freed.
    pub fn evict(&self, node: u32) -> u64 {
        match &self.inner {
            SharedImpl::Sharded { shards, bytes, count } => {
                match Self::shard(shards, node).lock().unwrap().remove(&node) {
                    Some((_, size)) => {
                        bytes.fetch_sub(size, Ordering::Relaxed);
                        count.fetch_sub(1, Ordering::Relaxed);
                        size
                    }
                    None => 0,
                }
            }
            SharedImpl::Locked(cache) => cache.lock().unwrap().evict(node),
        }
    }

    /// Resident bytes across all shards.
    pub fn resident_bytes(&self) -> u64 {
        match &self.inner {
            SharedImpl::Sharded { bytes, .. } => bytes.load(Ordering::Relaxed),
            SharedImpl::Locked(cache) => cache.lock().unwrap().resident_bytes(),
        }
    }

    /// Number of resident values.
    pub fn len(&self) -> usize {
        match &self.inner {
            SharedImpl::Sharded { count, .. } => count.load(Ordering::Relaxed),
            SharedImpl::Locked(cache) => cache.lock().unwrap().len(),
        }
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evict everything (end of iteration).
    pub fn clear(&self) {
        match &self.inner {
            SharedImpl::Sharded { shards, bytes, count } => {
                for shard in shards {
                    shard.lock().unwrap().clear();
                }
                bytes.store(0, Ordering::Relaxed);
                count.store(0, Ordering::Relaxed);
            }
            SharedImpl::Locked(cache) => cache.lock().unwrap().clear(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::Scalar;

    fn value_of_size(bytes: usize) -> Arc<Value> {
        Arc::new(Value::Scalar(Scalar::Text("x".repeat(bytes))))
    }

    #[test]
    fn put_get_evict_accounting() {
        let mut cache = ValueCache::new(CachePolicy::Eager);
        cache.put(1, value_of_size(100));
        cache.put(2, value_of_size(200));
        assert!(cache.contains(1));
        assert_eq!(cache.len(), 2);
        let before = cache.resident_bytes();
        assert!(before >= 300);
        let freed = cache.evict(1);
        assert!(freed >= 100);
        assert_eq!(cache.resident_bytes(), before - freed);
        assert!(!cache.contains(1));
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_some());
        assert_eq!(cache.evict(1), 0, "double evict is a no-op");
    }

    #[test]
    fn replacement_updates_bytes() {
        let mut cache = ValueCache::new(CachePolicy::Eager);
        cache.put(1, value_of_size(1000));
        let big = cache.resident_bytes();
        cache.put(1, value_of_size(10));
        assert!(cache.resident_bytes() < big);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Budget fits ~2 of the 3 values.
        let mut cache = ValueCache::new(CachePolicy::Lru { budget_bytes: 2_200 });
        cache.put(1, value_of_size(1000));
        cache.put(2, value_of_size(1000));
        // Touch 1 so 2 becomes the LRU victim.
        cache.get(1);
        cache.put(3, value_of_size(1000));
        assert!(cache.contains(1), "recently used survives");
        assert!(!cache.contains(2), "LRU victim evicted");
        assert!(cache.contains(3), "new value survives");
    }

    #[test]
    fn lru_never_evicts_fresh_insert() {
        let mut cache = ValueCache::new(CachePolicy::Lru { budget_bytes: 10 });
        cache.put(1, value_of_size(1000));
        assert!(cache.contains(1), "sole oversized value stays resident");
        cache.put(2, value_of_size(1000));
        assert!(cache.contains(2));
        assert!(!cache.contains(1));
    }

    #[test]
    fn shared_cache_matches_value_cache_semantics() {
        let cache = SharedValueCache::new(CachePolicy::Eager);
        assert!(cache.is_empty());
        cache.put(1, value_of_size(100));
        cache.put(2, value_of_size(200));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(1));
        let before = cache.resident_bytes();
        assert!(before >= 300);
        // Replacement adjusts accounting.
        cache.put(1, value_of_size(10));
        assert!(cache.resident_bytes() < before);
        assert_eq!(cache.len(), 2);
        let freed = cache.evict(1);
        assert!(freed >= 10);
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_some());
        assert_eq!(cache.evict(1), 0, "double evict is a no-op");
        cache.clear();
        assert_eq!(cache.resident_bytes(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_cache_lru_falls_back_to_locked_value_cache() {
        let cache = SharedValueCache::new(CachePolicy::Lru { budget_bytes: 2_200 });
        cache.put(1, value_of_size(1000));
        cache.put(2, value_of_size(1000));
        cache.get(1);
        cache.put(3, value_of_size(1000));
        assert!(cache.contains(1), "recently used survives");
        assert!(!cache.contains(2), "LRU victim evicted");
        assert!(cache.contains(3));
    }

    #[test]
    fn shared_cache_is_concurrency_safe() {
        let cache = SharedValueCache::new(CachePolicy::Eager);
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..200u32 {
                        let node = t * 1_000 + i;
                        cache.put(node, value_of_size(10));
                        assert!(cache.get(node).is_some());
                        if i % 2 == 0 {
                            cache.evict(node);
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), 4 * 100);
        assert_eq!(cache.resident_bytes(), {
            // Every resident value is the same size; totals must agree.
            let per = value_of_size(10).byte_size();
            4 * 100 * per
        });
    }

    #[test]
    fn eager_policy_ignores_budget() {
        let mut cache = ValueCache::new(CachePolicy::Eager);
        for i in 0..10 {
            cache.put(i, value_of_size(1_000));
        }
        assert_eq!(cache.len(), 10, "eager eviction is driven by scope, not size");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
    }
}
