//! Property tests for the observability substrate.
//!
//! * Histogram p50/p95/p99 against an exact sorted reference over
//!   adversarial distributions — empty, single-sample, all-equal,
//!   power-law, and arbitrary — must stay within the documented bucket
//!   resolution (≤ 1/32 relative above 32, exact below).
//! * Span-ring drop accounting under concurrent writers: retained events
//!   plus the reported drop count must equal the number of spans pushed,
//!   with no double counting across drains.

use helix_obs::span::Collector;
use helix_obs::{Histogram, SpanEvent};
use proptest::prelude::*;

/// Exact reference for quantile `q` using the histogram's rank rule:
/// `sorted[clamp(ceil(q * count), 1, count) - 1]`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as u64).clamp(1, sorted.len() as u64);
    sorted[rank as usize - 1]
}

/// Assert the histogram answer matches the exact reference to within
/// bucket resolution: never above, and at most `exact / 32` below
/// (exact below 32, ≤ 1/32 relative above).
fn assert_quantile_close(hist: &Histogram, sorted: &[u64], q: f64) {
    let exact = exact_quantile(sorted, q);
    let got = hist.quantile(q).expect("non-empty histogram");
    assert!(got <= exact, "q={q}: histogram {got} above exact {exact}");
    assert!(exact - got <= exact / 32, "q={q}: histogram {got} more than 1/32 below exact {exact}");
}

/// Adversarial sample vectors: empty and single-sample handled by the
/// generator's size range; all-equal, power-law, and arbitrary shapes by
/// the strategy union.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        // Arbitrary magnitudes across the full range.
        prop::collection::vec(any::<u64>(), 0..200),
        // All-equal.
        (any::<u64>(), 1..100usize).prop_map(|(v, n)| vec![v; n]),
        // Power-law-ish: many tiny values, few huge ones.
        prop::collection::vec(
            (0u32..64).prop_flat_map(
                |shift| (0u64..4).prop_map(move |m| (1u64 << shift).saturating_mul(m + 1))
            ),
            1..200
        ),
        // Small dense values (the exact sub-32 regime).
        prop::collection::vec(0u64..32, 1..100),
    ]
}

proptest! {
    #[test]
    fn quantiles_track_exact_sorted_reference(samples in samples()) {
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        if samples.is_empty() {
            prop_assert!(hist.quantile(0.5).is_none());
            prop_assert_eq!(hist.summary().count, 0);
        } else {
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.50, 0.95, 0.99] {
                assert_quantile_close(&hist, &sorted, q);
            }
            let summary = hist.summary();
            prop_assert_eq!(summary.count, samples.len() as u64);
            prop_assert_eq!(summary.min, sorted[0]);
            prop_assert_eq!(summary.max, *sorted.last().unwrap());
            prop_assert!(summary.p50 <= summary.p95 && summary.p95 <= summary.p99);
        }
    }

    #[test]
    fn single_sample_and_all_equal_are_exact(v in any::<u64>(), n in 1..50usize) {
        let hist = Histogram::new();
        for _ in 0..n {
            hist.record(v);
        }
        // The min/max clamp makes degenerate distributions exact despite
        // the log bucketing.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(hist.quantile(q), Some(v));
        }
        let summary = hist.summary();
        prop_assert_eq!(summary.min, v);
        prop_assert_eq!(summary.max, v);
        prop_assert_eq!(summary.p50, v);
    }
}

fn event(thread: u32, begin: u64) -> SpanEvent {
    SpanEvent {
        name: "probe",
        cat: "test",
        begin,
        end: begin + 1,
        thread,
        track: None,
        tenant: None,
        session: None,
        iteration: None,
        node: None,
        lane: None,
        amount: None,
    }
}

#[test]
fn ring_drop_accounting_survives_concurrent_writers() {
    // 4 shards of 64 spans against 8 writers x 512 spans: most spans
    // must drop, and retained + dropped must exactly equal pushed.
    const WRITERS: u32 = 8;
    const PER_WRITER: u64 = 512;
    let collector = Collector::new(4, 64);
    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let collector = &collector;
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    collector.record(event(t, i));
                }
            });
        }
    });
    let (events, dropped) = collector.drain();
    assert_eq!(
        events.len() as u64 + dropped,
        WRITERS as u64 * PER_WRITER,
        "every span is either retained or counted as dropped"
    );
    assert!(dropped > 0, "the ring was sized to overflow");
    // A second drain reports no stale drops and no events.
    let (again, dropped_again) = collector.drain();
    assert!(again.is_empty());
    assert_eq!(dropped_again, 0, "drops are reported once, as deltas");
}

#[test]
fn drop_deltas_accumulate_across_drains() {
    let collector = Collector::new(1, 4);
    for i in 0..10 {
        collector.record(event(0, i));
    }
    let (events, dropped) = collector.drain();
    assert_eq!((events.len(), dropped), (4, 6));
    for i in 0..7 {
        collector.record(event(0, i));
    }
    let (events, dropped) = collector.drain();
    assert_eq!((events.len(), dropped), (4, 3), "only drops since the last drain");
}
