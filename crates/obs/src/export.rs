//! Exporters: Chrome `trace_event` JSON and a compact text timeline.
//!
//! The JSON exporter emits the subset of the Chrome trace-event format
//! that Perfetto and `chrome://tracing` load directly: one `"X"`
//! (complete) event per span with microsecond `ts`/`dur` (fractional, so
//! nanosecond precision survives), plus `"M"` metadata events naming one
//! track per distinct worker/lane/tenant. Track tids are assigned by
//! sorted track name, so the same trace always serializes identically.

use std::io;
use std::path::{Path, PathBuf};

use serde::{write_json_compact, Json};

use crate::span::{drain_spans, trace_env_path, SpanEvent};

const PID: i128 = 1;

fn micros(nanos: u64) -> Json {
    Json::Float(nanos as f64 / 1_000.0)
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn span_args(event: &SpanEvent) -> Json {
    let mut args = vec![("thread", Json::Int(event.thread as i128))];
    if let Some(t) = &event.tenant {
        args.push(("tenant", Json::String(t.clone())));
    }
    if let Some(s) = event.session {
        args.push(("session", Json::Int(s as i128)));
    }
    if let Some(i) = event.iteration {
        args.push(("iteration", Json::Int(i as i128)));
    }
    if let Some(n) = &event.node {
        args.push(("node", Json::String(n.clone())));
    }
    if let Some(l) = event.lane {
        args.push(("lane", Json::Int(l as i128)));
    }
    if let Some(a) = event.amount {
        args.push(("amount", Json::Int(a as i128)));
    }
    obj(args)
}

/// Build a Chrome `trace_event` JSON document from drained spans.
///
/// Tracks (one per distinct [`SpanEvent::track_key`]) become threads of
/// a single `helix` process, named via `"M"` metadata events; tids are
/// assigned in sorted track-name order so output is deterministic given
/// the same spans.
pub fn chrome_trace_json(events: &[SpanEvent], dropped: u64) -> Json {
    let mut tracks: Vec<String> = events.iter().map(|e| e.track_key()).collect();
    tracks.sort();
    tracks.dedup();
    let tid_of = |key: &str| -> i128 { tracks.iter().position(|t| t == key).unwrap() as i128 + 1 };

    let mut trace_events = Vec::with_capacity(events.len() + tracks.len() + 1);
    trace_events.push(obj(vec![
        ("name", Json::String("process_name".into())),
        ("ph", Json::String("M".into())),
        ("pid", Json::Int(PID)),
        ("tid", Json::Int(0)),
        ("args", obj(vec![("name", Json::String("helix".into()))])),
    ]));
    for track in &tracks {
        trace_events.push(obj(vec![
            ("name", Json::String("thread_name".into())),
            ("ph", Json::String("M".into())),
            ("pid", Json::Int(PID)),
            ("tid", Json::Int(tid_of(track))),
            ("args", obj(vec![("name", Json::String(track.clone()))])),
        ]));
    }
    for event in events {
        trace_events.push(obj(vec![
            ("name", Json::String(event.name.into())),
            ("cat", Json::String(event.cat.into())),
            ("ph", Json::String("X".into())),
            ("pid", Json::Int(PID)),
            ("tid", Json::Int(tid_of(&event.track_key()))),
            ("ts", micros(event.begin)),
            ("dur", micros(event.duration())),
            ("args", span_args(event)),
        ]));
    }

    obj(vec![
        ("traceEvents", Json::Array(trace_events)),
        ("displayTimeUnit", Json::String("ms".into())),
        (
            "otherData",
            obj(vec![
                ("producer", Json::String("helix-obs".into())),
                ("dropped_spans", Json::Int(dropped as i128)),
            ]),
        ),
    ])
}

/// Serialize `events` as Chrome trace JSON and write it to `path`.
pub fn write_trace(path: &Path, events: &[SpanEvent], dropped: u64) -> io::Result<()> {
    std::fs::write(path, write_json_compact(&chrome_trace_json(events, dropped)))
}

/// Drain the global span ring and, if `HELIX_TRACE=<path>` is set, write
/// the Chrome trace there. Returns the path written, if any. Bench and
/// service drivers call this once on exit.
pub fn write_env_trace() -> io::Result<Option<PathBuf>> {
    let Some(path) = trace_env_path() else {
        return Ok(None);
    };
    let (events, dropped) = drain_spans();
    write_trace(&path, &events, dropped)?;
    Ok(Some(path))
}

fn fmt_ms(nanos: u64) -> String {
    format!("{:.3}ms", nanos as f64 / 1_000_000.0)
}

/// Render a compact per-track timeline report: for each track, the total
/// time and count per span name, busiest first. Suitable for appending
/// to bench output.
pub fn render_timeline(events: &[SpanEvent], dropped: u64) -> String {
    use std::collections::BTreeMap;

    if events.is_empty() {
        return format!("trace: 0 spans, {dropped} dropped\n");
    }
    let window_begin = events.iter().map(|e| e.begin).min().unwrap_or(0);
    let window_end = events.iter().map(|e| e.end).max().unwrap_or(0);

    // track -> span name -> (count, total nanos)
    let mut per_track: BTreeMap<String, BTreeMap<&'static str, (u64, u64)>> = BTreeMap::new();
    for event in events {
        let slot =
            per_track.entry(event.track_key()).or_default().entry(event.name).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += event.duration();
    }

    let mut out = format!(
        "trace: {} spans, {} dropped, window {}\n",
        events.len(),
        dropped,
        fmt_ms(window_end.saturating_sub(window_begin)),
    );
    for (track, names) in &per_track {
        let mut rows: Vec<_> = names.iter().collect();
        rows.sort_by_key(|(_, (_, total))| std::cmp::Reverse(*total));
        let cells: Vec<String> = rows
            .iter()
            .map(|(name, (count, total))| format!("{name} ×{count} {}", fmt_ms(*total)))
            .collect();
        out.push_str(&format!("  {track}: {}\n", cells.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &'static str, begin: u64, end: u64, track: Option<&str>) -> SpanEvent {
        SpanEvent {
            name,
            cat: "test",
            begin,
            end,
            thread: 0,
            track: track.map(String::from),
            tenant: None,
            session: None,
            iteration: None,
            node: None,
            lane: None,
            amount: None,
        }
    }

    #[test]
    fn trace_json_shape_and_determinism() {
        let events =
            vec![event("compute", 1_000, 4_000, None), event("load", 2_000, 3_000, Some("lane-0"))];
        let json = chrome_trace_json(&events, 7);
        let array = match json.get("traceEvents") {
            Some(Json::Array(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        // process_name + 2 thread_name metadata + 2 X events.
        assert_eq!(array.len(), 5);
        for entry in array {
            let ph = match entry.get("ph") {
                Some(Json::String(s)) => s.as_str(),
                _ => panic!("ph missing"),
            };
            assert!(ph == "X" || ph == "M");
        }
        // Deterministic: same spans, same bytes.
        let a = write_json_compact(&json);
        let b = write_json_compact(&chrome_trace_json(&events, 7));
        assert_eq!(a, b);
        // Round-trips through the parser.
        let parsed = serde::parse_json(&a).expect("well-formed JSON");
        assert_eq!(
            parsed.get("otherData").and_then(|o| o.get("dropped_spans")),
            Some(&Json::Int(7))
        );
    }

    #[test]
    fn timeline_mentions_tracks_and_drops() {
        let events = vec![
            event("compute", 0, 2_000_000, None),
            event("fetch", 0, 1_000_000, Some("lane-1")),
        ];
        let text = render_timeline(&events, 3);
        assert!(text.contains("2 spans"));
        assert!(text.contains("3 dropped"));
        assert!(text.contains("worker-00"));
        assert!(text.contains("lane-1"));
        assert!(text.contains("compute ×1"));
    }
}
