//! Named counters, gauges, and log-bucketed histograms.
//!
//! The histogram uses an HDR-style log-linear bucket layout: values
//! below 32 get one bucket each (exact); above that, each power-of-two
//! range is split into 32 linear sub-buckets, so a recorded value is
//! recoverable to within 1/32 (≈ 3.1 %) of its magnitude. Quantile
//! extraction walks the buckets to the requested rank and returns the
//! bucket's lower bound clamped into the exact observed `[min, max]`,
//! which makes single-sample and all-equal distributions exact.
//!
//! All types are cheap to share: counters and gauges are single atomics;
//! a histogram is one short mutex around a flat bucket array.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use serde::Serialize;

/// Linear sub-buckets per power-of-two range (a power of two itself).
const SUB: u64 = 32;
const SUB_BITS: u32 = 5;
/// Total bucket count covering the full `u64` range.
const NBUCKETS: usize = (SUB as usize) + (64 - SUB_BITS as usize) * SUB as usize;

/// Bucket index for `v`. Monotonic in `v`; exact below [`SUB`].
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // e >= SUB_BITS
        let mantissa = v >> (e - SUB_BITS); // in [SUB, 2*SUB)
        ((e - SUB_BITS) as u64 * SUB + mantissa) as usize
    }
}

/// Smallest value mapping to bucket `idx` (inverse of [`bucket_index`]).
fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let block = idx / SUB - 1;
        let mantissa = SUB + idx % SUB;
        mantissa << block
    }
}

struct HistInner {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
pub struct Histogram {
    inner: Mutex<HistInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            inner: Mutex::new(HistInner {
                buckets: Vec::new(), // allocated on first record
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
            }),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        let mut h = self.inner.lock();
        if h.buckets.is_empty() {
            h.buckets = vec![0; NBUCKETS];
        }
        h.buckets[bucket_index(v)] += 1;
        h.count += 1;
        h.sum += v as u128;
        h.min = h.min.min(v);
        h.max = h.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Quantile `q` in `[0, 1]`: the smallest bucket floor at or above
    /// the rank-`⌈q·count⌉` sample, clamped into the observed
    /// `[min, max]`. `None` when empty. Exact within bucket resolution
    /// (≤ 1/32 relative above 32, exact below).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let h = self.inner.lock();
        if h.count == 0 {
            return None;
        }
        let rank = ((q * h.count as f64).ceil() as u64).clamp(1, h.count);
        let mut seen = 0u64;
        for (idx, &n) in h.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_floor(idx).clamp(h.min, h.max));
            }
        }
        Some(h.max)
    }

    /// Snapshot the headline statistics.
    pub fn summary(&self) -> HistogramSummary {
        let (count, min, max, mean) = {
            let h = self.inner.lock();
            if h.count == 0 {
                return HistogramSummary::default();
            }
            (h.count, h.min, h.max, (h.sum / h.count as u128) as u64)
        };
        HistogramSummary {
            count,
            min,
            max,
            mean,
            p50: self.quantile(0.50).unwrap_or(0),
            p95: self.quantile(0.95).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }
}

/// Serializable headline statistics of one histogram — the block
/// embedded under `"histograms"` in every `BENCH_*.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact smallest sample.
    pub min: u64,
    /// Exact largest sample.
    pub max: u64,
    /// Exact arithmetic mean (integer-truncated).
    pub mean: u64,
    /// Median, exact within bucket resolution.
    pub p50: u64,
    /// 95th percentile, exact within bucket resolution.
    pub p95: u64,
    /// 99th percentile, exact within bucket resolution.
    pub p99: u64,
}

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge. Cloning shares the underlying atomic.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named instruments. Lookup is by string name; the
/// returned handles are cheap clones sharing the registered instrument,
/// so hot paths should look up once and keep the handle.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Create an empty registry (bench drivers use private instances so
    /// their reports are isolated from the process-wide one).
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters.lock().entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges.lock().entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Snapshot every instrument into a serializable tree (maps are
    /// name-sorted, so the snapshot serializes deterministically).
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self.counters.lock().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: self.gauges.lock().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// Serializable point-in-time view of a [`Registry`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// The process-wide registry the instrumented layers write to.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_is_monotonic_and_tight() {
        let mut prev = 0usize;
        for v in (0..4096u64).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index must be monotonic (v={v})");
            prev = idx;
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} must not exceed {v}");
            // Bucket width is at most 1/32 of the floor (exact below 32).
            if v >= SUB {
                assert!(v - floor <= floor / SUB, "bucket too wide at {v}");
            } else {
                assert_eq!(floor, v);
            }
        }
        assert!(bucket_index(u64::MAX) < NBUCKETS);
    }

    #[test]
    fn quantiles_exact_for_small_values() {
        let h = Histogram::new();
        for v in 0..20 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(9));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(19));
    }

    #[test]
    fn empty_and_single_sample() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.summary(), HistogramSummary::default());
        h.record(777_777);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(777_777), "q={q}");
        }
    }

    #[test]
    fn registry_snapshot_is_sorted_and_shared() {
        let r = Registry::new();
        r.counter("b.count").add(2);
        r.counter("a.count").incr();
        r.gauge("depth").set(-3);
        r.histogram("lat").record(100);
        r.histogram("lat").record(300); // same instrument via name
        let snap = r.snapshot();
        assert_eq!(snap.counters.keys().collect::<Vec<_>>(), vec!["a.count", "b.count"]);
        assert_eq!(snap.counters["b.count"], 2);
        assert_eq!(snap.gauges["depth"], -3);
        assert_eq!(snap.histograms["lat"].count, 2);
    }
}
