//! # helix-obs
//!
//! The observability substrate of the HELIX reproduction. Three pieces:
//!
//! * [`mod@span`] — a lock-sharded, bounded in-process **span ring**: RAII
//!   begin/end events with monotonic nanos, a stable per-thread track id,
//!   and structured labels (tenant/session/iteration/node/lane). Cheap
//!   enough to leave compiled in: when tracing is disabled a span is two
//!   atomic loads and no clock read. Under pressure the ring drops
//!   oldest-first and counts every drop so truncation is never silent.
//! * [`metrics`] — a registry of named counters, gauges and log-bucketed
//!   histograms with p50/p95/p99 extraction that is exact within bucket
//!   resolution (≤ 1/32 relative error above 32, exact below).
//! * [`export`] — exporters: Chrome `trace_event` JSON (loadable in
//!   Perfetto / `chrome://tracing`, one track per worker/lane/tenant),
//!   a compact text timeline for bench output, and helpers for embedding
//!   registry snapshots in `BENCH_*.json`.
//!
//! ## Inertness contract
//!
//! Nothing in this crate feeds back into planning or execution: spans and
//! metrics are written, never read, by the instrumented layers. Plans,
//! signatures, and materialization decisions see no timestamp originating
//! here, so enabling tracing cannot perturb byte-identity — a property
//! enforced by `tests/observability_inertness.rs` at the workspace root.
//!
//! ## Enabling
//!
//! Tracing is off by default. Set `HELIX_TRACE=<path>` to enable span
//! collection and have the bench drivers write a Chrome trace to `<path>`
//! on exit, or call [`span::set_enabled`] / [`export::write_trace`]
//! programmatically (used by tests).

pub mod export;
pub mod metrics;
pub mod span;

pub use export::{chrome_trace_json, render_timeline, write_env_trace, write_trace};
pub use metrics::{Histogram, HistogramSummary, Registry, RegistrySnapshot};
pub use span::{
    drain_spans, now_nanos, set_enabled, span, span_at, trace_env_path, tracing_enabled, SpanEvent,
    SpanGuard,
};

/// Span categories, one per instrumented layer. Kept as plain string
/// constants (Chrome `cat` field) so adding a layer is not a breaking
/// enum change.
pub mod layer {
    /// Engine node lifecycle: dispatch/compute/load/prune/materialize.
    pub const ENGINE: &str = "engine";
    /// `core::pipeline` lanes: speculation, background writer, prefetch.
    pub const PIPELINE: &str = "pipeline";
    /// Serve admission + runner: `admission.queued` (enqueue→pick, DRF
    /// share at pick), `session.park` (retrospective at resume: time a
    /// job sat parked for its session or a core token), `runner.resume`
    /// (park→iteration handoff on a pool worker), `execute`; gauge
    /// `serve.sessions_parked` tracks the live wait-set depth.
    pub const SERVE: &str = "serve";
    /// Storage: journal append/compact/fsync, eviction, recovery replay.
    pub const STORAGE: &str = "storage";
    /// Bench drivers: measured wall windows (serial/pipelined/service).
    pub const BENCH: &str = "bench";
}
