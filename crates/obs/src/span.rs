//! Lock-sharded, bounded span collection.
//!
//! A span is a named time interval on a *track* (one per worker thread,
//! pipeline lane, or tenant) with structured labels. Spans are recorded
//! into a fixed number of shards — each a [`RingLog`] behind its own
//! mutex, selected by the recording thread's ordinal — so concurrent
//! workers almost never contend on one lock. Each shard is bounded;
//! overflow drops the oldest span and is counted, never silent.
//!
//! ## Cost model
//!
//! * Tracing disabled (the default): [`span`] is one relaxed atomic load
//!   and returns an inert guard — no clock read, no allocation, no lock.
//! * Tracing enabled: two `Instant` reads per span plus one short
//!   critical section on the recording thread's shard.
//!
//! ## Inertness
//!
//! Timestamps recorded here are never read back by the engine, the
//! optimizers, or the service — the only consumers are the exporters in
//! [`crate::export`]. See the crate docs for the full argument.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use helix_common::ring::RingLog;
use helix_common::timing::duration_to_nanos;
use helix_common::Nanos;
use parking_lot::Mutex;

/// Number of shards in the span ring. A small power of two: enough that
/// an 8-worker engine plus lane/writer threads rarely collide.
const SHARDS: usize = 16;

/// Per-shard capacity. 64 × `BOUNDED_LOG_CAP` (= 4096) spans per shard,
/// 65 536 workspace-wide — minutes of engine activity, bounded memory.
const SHARD_CAP: usize = 64 * helix_common::BOUNDED_LOG_CAP;

/// One completed span: a closed interval of monotonic nanos on a track.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name, e.g. `"compute"`, `"journal.append"`.
    pub name: &'static str,
    /// Category — one of the [`crate::layer`] constants.
    pub cat: &'static str,
    /// Begin, nanos since the process-wide trace epoch.
    pub begin: Nanos,
    /// End, nanos since the process-wide trace epoch (`end >= begin`).
    pub end: Nanos,
    /// Ordinal of the recording thread (stable for the thread's life).
    pub thread: u32,
    /// Explicit track name (e.g. `"lane-0"`, `"tenant-alice"`); when
    /// `None` the exporter derives `worker-<thread>`.
    pub track: Option<String>,
    /// Tenant label, for serve/storage spans.
    pub tenant: Option<String>,
    /// Session id label.
    pub session: Option<u64>,
    /// Iteration number label.
    pub iteration: Option<u64>,
    /// Workflow node name label, for engine spans.
    pub node: Option<String>,
    /// Lane index label, for pipeline spans.
    pub lane: Option<u32>,
    /// Free numeric payload: bytes written, frames replayed, scaled DRF
    /// share — whatever magnitude the span wants to carry.
    pub amount: Option<u64>,
}

impl SpanEvent {
    /// Span duration in nanos.
    pub fn duration(&self) -> Nanos {
        self.end.saturating_sub(self.begin)
    }

    /// The track key the exporters group this span under.
    pub fn track_key(&self) -> String {
        match &self.track {
            Some(t) => t.clone(),
            None => format!("worker-{:02}", self.thread),
        }
    }
}

struct Shard {
    ring: RingLog<SpanEvent>,
    /// Drop count already handed out by a previous drain, so each drain
    /// reports only the drops that happened since the last one.
    reported_drops: u64,
}

/// A sharded bounded collector. The process-wide instance backs the free
/// functions below; tests build private instances to avoid cross-test
/// interference.
pub struct Collector {
    shards: Vec<Mutex<Shard>>,
}

impl Collector {
    /// Build a collector with `shards` shards of `cap` spans each.
    pub fn new(shards: usize, cap: usize) -> Self {
        let shards = shards.max(1);
        Collector {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { ring: RingLog::new(cap), reported_drops: 0 }))
                .collect(),
        }
    }

    /// Record one completed span.
    pub fn record(&self, event: SpanEvent) {
        let idx = event.thread as usize % self.shards.len();
        self.shards[idx].lock().ring.push(event);
    }

    /// Drain all retained spans (sorted by begin time, then thread) and
    /// the number of spans dropped since the previous drain.
    pub fn drain(&self) -> (Vec<SpanEvent>, u64) {
        let mut events = Vec::new();
        let mut dropped = 0;
        for shard in &self.shards {
            let mut s = shard.lock();
            events.extend(s.ring.drain());
            let total = s.ring.dropped();
            dropped += total - s.reported_drops;
            s.reported_drops = total;
        }
        events.sort_by_key(|e| (e.begin, e.thread, e.end));
        (events, dropped)
    }

    /// Number of spans currently retained across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().ring.len()).sum()
    }

    /// True when no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn global() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector::new(SHARDS, SHARD_CAP))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanos since the process-wide trace epoch. The epoch is
/// fixed at first use, so all spans in one process share an origin.
pub fn now_nanos() -> Nanos {
    duration_to_nanos(epoch().elapsed())
}

// Enabled flag: 0 = uninitialised (read the env on first query),
// 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether span collection is currently on.
pub fn tracing_enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var_os("HELIX_TRACE").is_some();
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        2 => true,
        _ => false,
    }
}

/// Programmatically switch span collection on or off, overriding the
/// `HELIX_TRACE` default. Used by tests and embedding drivers.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The trace output path from `HELIX_TRACE`, if set (and non-empty).
pub fn trace_env_path() -> Option<PathBuf> {
    match std::env::var_os("HELIX_TRACE") {
        Some(p) if !p.is_empty() => Some(PathBuf::from(p)),
        _ => None,
    }
}

/// Stable small ordinal for the calling thread (assigned on first use).
pub fn thread_ordinal() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static ORDINAL: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

/// RAII span: begins at construction (or at an explicit retrospective
/// interval), records into the global collector when dropped. All label
/// setters move the guard, so instrumentation reads as one expression:
///
/// ```ignore
/// let _span = obs::span(obs::layer::ENGINE, "compute").node(name);
/// ```
#[must_use = "a span records when dropped; binding it to `_` ends it immediately"]
pub struct SpanGuard {
    event: Option<SpanEvent>,
    /// Retrospective spans carry a fixed end; live spans stamp on drop.
    fixed_end: bool,
}

impl SpanGuard {
    fn inert() -> Self {
        SpanGuard { event: None, fixed_end: false }
    }

    /// Set the explicit track name (e.g. `"lane-0"`, `"tenant-alice"`).
    pub fn track(mut self, track: impl Into<String>) -> Self {
        if let Some(e) = &mut self.event {
            e.track = Some(track.into());
        }
        self
    }

    /// Label the span with a tenant name.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        if let Some(e) = &mut self.event {
            e.tenant = Some(tenant.into());
        }
        self
    }

    /// Label the span with a session id.
    pub fn session(mut self, session: u64) -> Self {
        if let Some(e) = &mut self.event {
            e.session = Some(session);
        }
        self
    }

    /// Label the span with an iteration number.
    pub fn iteration(mut self, iteration: u64) -> Self {
        if let Some(e) = &mut self.event {
            e.iteration = Some(iteration);
        }
        self
    }

    /// Label the span with a workflow node name.
    pub fn node(mut self, node: impl Into<String>) -> Self {
        if let Some(e) = &mut self.event {
            e.node = Some(node.into());
        }
        self
    }

    /// Label the span with a lane index.
    pub fn lane(mut self, lane: u32) -> Self {
        if let Some(e) = &mut self.event {
            e.lane = Some(lane);
        }
        self
    }

    /// Attach a numeric payload (bytes, frames, scaled share, …).
    pub fn amount(mut self, amount: u64) -> Self {
        if let Some(e) = &mut self.event {
            e.amount = Some(amount);
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut event) = self.event.take() {
            if !self.fixed_end {
                event.end = now_nanos();
            }
            global().record(event);
        }
    }
}

fn fresh_event(cat: &'static str, name: &'static str, begin: Nanos, end: Nanos) -> SpanEvent {
    SpanEvent {
        name,
        cat,
        begin,
        end,
        thread: thread_ordinal(),
        track: None,
        tenant: None,
        session: None,
        iteration: None,
        node: None,
        lane: None,
        amount: None,
    }
}

/// Open a live span: begins now, ends (and records) when the returned
/// guard drops. A no-op returning an inert guard when tracing is off.
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard::inert();
    }
    let begin = now_nanos();
    SpanGuard { event: Some(fresh_event(cat, name, begin, begin)), fixed_end: false }
}

/// Record a retrospective span over an already-measured interval of the
/// obs clock (`[begin, begin + dur_nanos]`). Returns a guard so labels
/// can be chained; the span is committed when the guard drops.
pub fn span_at(cat: &'static str, name: &'static str, begin: Nanos, dur_nanos: Nanos) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard::inert();
    }
    SpanGuard {
        event: Some(fresh_event(cat, name, begin, begin.saturating_add(dur_nanos))),
        fixed_end: true,
    }
}

/// Drain the global collector: all retained spans (time-sorted) plus the
/// count of spans dropped under pressure since the previous drain.
pub fn drain_spans() -> (Vec<SpanEvent>, u64) {
    global().drain()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_bounds_and_counts_drops() {
        let c = Collector::new(1, 8);
        for i in 0..20u64 {
            let mut e = fresh_event("t", "x", i, i + 1);
            e.thread = 0;
            c.record(e);
        }
        let (events, dropped) = c.drain();
        assert_eq!(events.len(), 8);
        assert_eq!(dropped, 12);
        // Oldest dropped first: the retained spans are the newest 8.
        assert_eq!(events.first().unwrap().begin, 12);
        // A second drain reports only new drops.
        let (events, dropped) = c.drain();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn drain_sorts_across_shards() {
        let c = Collector::new(4, 8);
        for i in 0..12u64 {
            let mut e = fresh_event("t", "x", 100 - i, 100 - i);
            e.thread = i as u32; // spread across shards
            c.record(e);
        }
        let (events, _) = c.drain();
        let begins: Vec<_> = events.iter().map(|e| e.begin).collect();
        let mut sorted = begins.clone();
        sorted.sort_unstable();
        assert_eq!(begins, sorted);
    }

    #[test]
    fn track_key_defaults_to_worker() {
        let mut e = fresh_event("t", "x", 0, 1);
        e.thread = 3;
        assert_eq!(e.track_key(), "worker-03");
        e.track = Some("lane-1".into());
        assert_eq!(e.track_key(), "lane-1");
    }
}
