//! Change tracking via Merkle-chain signatures (paper §4.2), keyed by
//! full provenance.
//!
//! The paper defines node equivalence representationally: a node is
//! equivalent across iterations iff its operator declaration is unchanged
//! *and* all of its parents are equivalent (Definition 2). We realize this
//! with a chain hash, extended with the *execution environment*
//! ([`ExecEnv`]) at exactly the nodes whose bytes it can affect:
//!
//! ```text
//! sig(n) = decl_sig(n) ⨝ sig(parent₁) ⨝ … ⨝ sig(parent_k)
//!          [⨝ tagged(seed)  if n declares ProvenanceInputs::SEED]
//!          [⨝ tagged(nonce) if n is volatile]
//! ```
//!
//! so two nodes are equivalent exactly when their chain signatures match,
//! and "has an equivalent materialization" (Definition 3) becomes a
//! catalog lookup by signature. This also subsumes Constraint 1: a changed
//! declaration changes the signature of the node and every descendant, so
//! none of them can hit the catalog and all needed ones are recomputed.
//!
//! **Provenance keying** (cf. arXiv:1804.05892 on cross-user reuse): a
//! *stochastic* operator — one that declares
//! [`ProvenanceInputs::SEED`](crate::operator::ProvenanceInputs) — mixes
//! the session seed into its own signature; deterministic operators
//! inherit provenance only through their parents' signatures. Two
//! sessions that differ only in seed therefore share signatures for the
//! whole seed-independent prefix (parsing, feature extraction) and
//! diverge from the first stochastic node downward, which is what makes a
//! shared catalog sound without a service-wide seed: signature-equal
//! implies byte-equal, seed included. Each provenance word is folded with
//! a domain tag ([`Signature::chain_tagged`]) so a seed can never collide
//! with a nonce or a version counter.
//!
//! **Volatile operators** (declared non-deterministic, e.g. the MNIST
//! random Fourier projection) additionally chain in the *nonce of their
//! last actual execution*: while nothing upstream changes they remain
//! equivalent to their stored output (PPR-only iterations may reuse them,
//! §6.5.2), but any re-execution draws a fresh nonce, transitively
//! deprecating every downstream artifact — the paper's "nondeterministic
//! … hence not reusable" semantics.

use crate::dsl::Workflow;
use crate::operator::ProvenanceInputs;
use helix_common::hash::Signature;
use helix_flow::NodeId;
use std::collections::HashMap;

/// Domain tag under which the session seed is folded into signatures.
const SEED_TAG: &str = "helix/env/seed";
/// Domain tag under which volatile-execution nonces are folded.
const NONCE_TAG: &str = "helix/env/nonce";

/// The execution-environment provenance fingerprint: every input outside
/// the workflow declaration that can change an operator's output bytes.
///
/// Today that is the master seed; data versions already live in source
/// declaration signatures, and everything else a
/// [`SessionConfig`](crate::session::SessionConfig) carries — worker
/// counts, core/storage budgets, cache policy, materialization
/// hysteresis, pipelining — is
/// *deliberately excluded* because the engine's determinism contract
/// proves it cannot change bytes. Folding a byte-neutral knob in would
/// only shatter sharing; leaving a byte-affecting knob out would corrupt
/// it. New knobs must pick a side here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecEnv {
    /// Master seed for all stochastic operators.
    pub seed: u64,
}

impl ExecEnv {
    /// An environment under `seed`.
    pub fn new(seed: u64) -> ExecEnv {
        ExecEnv { seed }
    }

    /// Fold the environment fields named by `inputs` into `sig`,
    /// domain-separated. [`ProvenanceInputs::NONE`] returns `sig`
    /// unchanged — deterministic operators inherit provenance only
    /// through their parents.
    #[must_use]
    pub fn fold(&self, sig: Signature, inputs: ProvenanceInputs) -> Signature {
        let mut sig = sig;
        if inputs.contains(ProvenanceInputs::SEED) {
            sig = sig.chain_tagged(SEED_TAG, self.seed);
        }
        sig
    }
}

/// Chain signatures for every node of a workflow, given the current
/// volatile-operator nonces (keyed by operator name) and the session's
/// execution environment.
///
/// Returns one signature per node, indexed by `NodeId`.
pub fn chain_signatures(
    wf: &Workflow,
    nonces: &HashMap<String, u64>,
    env: &ExecEnv,
) -> Vec<Signature> {
    let dag = wf.dag();
    let order = dag.topo_order().expect("workflow DAG must be acyclic");
    let mut sigs = vec![Signature::of_str("uninit"); dag.len()];
    for id in order {
        let spec = dag.payload(id);
        let mut sig = spec.decl_sig;
        for parent in dag.parents(id) {
            sig = sig.chain(sigs[parent.ix()]);
        }
        sig = env.fold(sig, spec.operator.byte_affecting_inputs());
        if spec.volatile {
            let nonce = nonces.get(&spec.name).copied().unwrap_or(0);
            sig = sig.chain_tagged(NONCE_TAG, nonce);
        }
        sigs[id.ix()] = sig;
    }
    sigs
}

/// Which nodes differ from the signatures recorded for the previous
/// iteration (by node *name*)? Used for purging deprecated
/// materializations and for reporting.
pub fn changed_nodes(
    wf: &Workflow,
    sigs: &[Signature],
    previous: &HashMap<String, Signature>,
) -> Vec<NodeId> {
    wf.dag()
        .iter()
        .filter(|(id, spec)| previous.get(&spec.name) != Some(&sigs[id.ix()]))
        .map(|(id, _)| id)
        .collect()
}

/// Snapshot `name → signature` for the next iteration's comparison.
pub fn signature_snapshot(wf: &Workflow, sigs: &[Signature]) -> HashMap<String, Signature> {
    wf.dag().iter().map(|(id, spec)| (spec.name.clone(), sigs[id.ix()])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Algo;
    use helix_data::{Scalar, Value};

    const ENV: ExecEnv = ExecEnv { seed: 42 };

    fn simple(version_b: u64) -> Workflow {
        let mut wf = Workflow::new("w");
        let a = wf.source("a", 1, |_| Ok(Value::Scalar(Scalar::I64(1))));
        let b = wf.reduce("b", a, version_b, |_v, _| Ok(Value::Scalar(Scalar::I64(2))));
        let c = wf.reduce("c", b, 1, |_v, _| Ok(Value::Scalar(Scalar::I64(3))));
        wf.output(c);
        wf
    }

    #[test]
    fn unchanged_workflow_same_signatures() {
        let w1 = simple(1);
        let w2 = simple(1);
        let none = HashMap::new();
        assert_eq!(chain_signatures(&w1, &none, &ENV), chain_signatures(&w2, &none, &ENV));
    }

    #[test]
    fn change_propagates_to_descendants_only() {
        let w1 = simple(1);
        let w2 = simple(2); // b's UDF version bumped
        let none = HashMap::new();
        let s1 = chain_signatures(&w1, &none, &ENV);
        let s2 = chain_signatures(&w2, &none, &ENV);
        let id = |wf: &Workflow, n: &str| wf.node_by_name(n).unwrap().ix();
        assert_eq!(s1[id(&w1, "a")], s2[id(&w2, "a")], "upstream unchanged");
        assert_ne!(s1[id(&w1, "b")], s2[id(&w2, "b")], "changed node");
        assert_ne!(s1[id(&w1, "c")], s2[id(&w2, "c")], "descendant deprecated");
    }

    #[test]
    fn changed_nodes_against_snapshot() {
        let w1 = simple(1);
        let none = HashMap::new();
        let s1 = chain_signatures(&w1, &none, &ENV);
        let snapshot = signature_snapshot(&w1, &s1);

        // Same workflow: nothing changed.
        assert!(changed_nodes(&w1, &s1, &snapshot).is_empty());

        // Bump b: b and c change, a does not.
        let w2 = simple(2);
        let s2 = chain_signatures(&w2, &none, &ENV);
        let changed = changed_nodes(&w2, &s2, &snapshot);
        let names: Vec<&str> =
            changed.iter().map(|id| w2.dag().payload(*id).name.as_str()).collect();
        assert_eq!(names, vec!["b", "c"]);

        // Empty snapshot (iteration 0): everything is original.
        assert_eq!(changed_nodes(&w1, &s1, &HashMap::new()).len(), 3);
    }

    fn volatile_wf() -> Workflow {
        let mut wf = Workflow::new("v");
        let d = wf.source("d", 1, |_| {
            use helix_data::{Example, ExampleBatch, FeatureVector, Split};
            Ok(Value::examples(ExampleBatch::dense(vec![Example::new(
                FeatureVector::Dense(vec![1.0, 2.0]),
                Some(0.0),
                Split::Train,
            )])))
        });
        let rff = wf.learner("rff", d, Algo::RandomFourier { dim_out: 4, gamma: 0.1 });
        let out = wf.predict("mapped", rff, d);
        wf.output(out);
        wf
    }

    /// A chain with a stochastic learner in the middle: seed-independent
    /// prefix (`d` and friends), seed-keyed model, deterministic suffix
    /// inheriting the seed through its parent.
    fn stochastic_wf() -> Workflow {
        let mut wf = Workflow::new("s");
        let d = wf.source("d", 1, |_| {
            use helix_data::{Example, ExampleBatch, FeatureVector, Split};
            Ok(Value::examples(ExampleBatch::dense(vec![Example::new(
                FeatureVector::Dense(vec![1.0, 2.0]),
                Some(0.0),
                Split::Train,
            )])))
        });
        let model = wf.learner("lr", d, Algo::LogisticRegression { l2: 0.1, epochs: 2 });
        let pred = wf.predict("pred", model, d);
        wf.output(pred);
        wf
    }

    #[test]
    fn volatile_nonce_deprecates_descendants() {
        let wf = volatile_wf();
        let mut nonces = HashMap::new();
        nonces.insert("rff".to_string(), 1u64);
        let s1 = chain_signatures(&wf, &nonces, &ENV);
        nonces.insert("rff".to_string(), 2u64);
        let s2 = chain_signatures(&wf, &nonces, &ENV);
        let id = |n: &str| wf.node_by_name(n).unwrap().ix();
        assert_eq!(s1[id("d")], s2[id("d")], "upstream untouched by nonce");
        assert_ne!(s1[id("rff")], s2[id("rff")]);
        assert_ne!(s1[id("mapped")], s2[id("mapped")], "descendant deprecated by nonce");
        // Same nonce → stable (PPR-only iterations can reuse).
        let s3 = chain_signatures(&wf, &nonces, &ENV);
        assert_eq!(s2, s3);
    }

    #[test]
    fn seed_keys_stochastic_nodes_and_their_descendants_only() {
        let wf = stochastic_wf();
        let none = HashMap::new();
        let s1 = chain_signatures(&wf, &none, &ExecEnv::new(1));
        let s2 = chain_signatures(&wf, &none, &ExecEnv::new(2));
        let id = |n: &str| wf.node_by_name(n).unwrap().ix();
        assert_eq!(s1[id("d")], s2[id("d")], "seed-independent prefix shared across seeds");
        assert_ne!(s1[id("lr")], s2[id("lr")], "stochastic node keyed by seed");
        assert_ne!(s1[id("pred")], s2[id("pred")], "descendant inherits the seed key");
        // Same seed → identical everywhere (solo/service equivalence).
        assert_eq!(s1, chain_signatures(&wf, &none, &ExecEnv::new(1)));
    }

    #[test]
    fn deterministic_workflows_ignore_the_seed_entirely() {
        let wf = simple(1);
        let none = HashMap::new();
        assert_eq!(
            chain_signatures(&wf, &none, &ExecEnv::new(1)),
            chain_signatures(&wf, &none, &ExecEnv::new(2)),
            "no stochastic node anywhere: seeds must not fragment sharing"
        );
    }

    #[test]
    fn seed_and_nonce_domains_do_not_collide() {
        let wf = volatile_wf();
        let mut nonces = HashMap::new();
        nonces.insert("rff".to_string(), 7u64);
        // Env seed 7 with nonce 0 vs env seed 0 with nonce 7: if the two
        // words were folded untagged, a crafted pair like this could
        // collide; tags keep the domains apart.
        let a = chain_signatures(&wf, &nonces, &ExecEnv::new(0));
        let b = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(7));
        let id = |n: &str| wf.node_by_name(n).unwrap().ix();
        assert_ne!(a[id("rff")], b[id("rff")]);
    }
}
