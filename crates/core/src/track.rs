//! Change tracking via Merkle-chain signatures (paper §4.2).
//!
//! The paper defines node equivalence representationally: a node is
//! equivalent across iterations iff its operator declaration is unchanged
//! *and* all of its parents are equivalent (Definition 2). We realize this
//! with a chain hash:
//!
//! ```text
//! sig(n) = decl_sig(n) ⨝ sig(parent₁) ⨝ … ⨝ sig(parent_k) [⨝ nonce(n)]
//! ```
//!
//! so two nodes are equivalent exactly when their chain signatures match,
//! and "has an equivalent materialization" (Definition 3) becomes a
//! catalog lookup by signature. This also subsumes Constraint 1: a changed
//! declaration changes the signature of the node and every descendant, so
//! none of them can hit the catalog and all needed ones are recomputed.
//!
//! **Volatile operators** (declared non-deterministic, e.g. the MNIST
//! random Fourier projection) chain in the *nonce of their last actual
//! execution*: while nothing upstream changes they remain equivalent to
//! their stored output (PPR-only iterations may reuse them, §6.5.2), but
//! any re-execution draws a fresh nonce, transitively deprecating every
//! downstream artifact — the paper's "nondeterministic … hence not
//! reusable" semantics.

use crate::dsl::Workflow;
use helix_common::hash::Signature;
use helix_flow::NodeId;
use std::collections::HashMap;

/// Chain signatures for every node of a workflow, given the current
/// volatile-operator nonces (keyed by operator name).
///
/// Returns one signature per node, indexed by `NodeId`.
pub fn chain_signatures(wf: &Workflow, nonces: &HashMap<String, u64>) -> Vec<Signature> {
    let dag = wf.dag();
    let order = dag.topo_order().expect("workflow DAG must be acyclic");
    let mut sigs = vec![Signature::of_str("uninit"); dag.len()];
    for id in order {
        let spec = dag.payload(id);
        let mut sig = spec.decl_sig;
        for parent in dag.parents(id) {
            sig = sig.chain(sigs[parent.ix()]);
        }
        if spec.volatile {
            let nonce = nonces.get(&spec.name).copied().unwrap_or(0);
            sig = sig.chain_u64(nonce);
        }
        sigs[id.ix()] = sig;
    }
    sigs
}

/// Which nodes differ from the signatures recorded for the previous
/// iteration (by node *name*)? Used for purging deprecated
/// materializations and for reporting.
pub fn changed_nodes(
    wf: &Workflow,
    sigs: &[Signature],
    previous: &HashMap<String, Signature>,
) -> Vec<NodeId> {
    wf.dag()
        .iter()
        .filter(|(id, spec)| previous.get(&spec.name) != Some(&sigs[id.ix()]))
        .map(|(id, _)| id)
        .collect()
}

/// Snapshot `name → signature` for the next iteration's comparison.
pub fn signature_snapshot(wf: &Workflow, sigs: &[Signature]) -> HashMap<String, Signature> {
    wf.dag().iter().map(|(id, spec)| (spec.name.clone(), sigs[id.ix()])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Algo;
    use helix_data::{Scalar, Value};

    fn simple(version_b: u64) -> Workflow {
        let mut wf = Workflow::new("w");
        let a = wf.source("a", 1, |_| Ok(Value::Scalar(Scalar::I64(1))));
        let b = wf.reduce("b", a, version_b, |_v, _| Ok(Value::Scalar(Scalar::I64(2))));
        let c = wf.reduce("c", b, 1, |_v, _| Ok(Value::Scalar(Scalar::I64(3))));
        wf.output(c);
        wf
    }

    #[test]
    fn unchanged_workflow_same_signatures() {
        let w1 = simple(1);
        let w2 = simple(1);
        let none = HashMap::new();
        assert_eq!(chain_signatures(&w1, &none), chain_signatures(&w2, &none));
    }

    #[test]
    fn change_propagates_to_descendants_only() {
        let w1 = simple(1);
        let w2 = simple(2); // b's UDF version bumped
        let none = HashMap::new();
        let s1 = chain_signatures(&w1, &none);
        let s2 = chain_signatures(&w2, &none);
        let id = |wf: &Workflow, n: &str| wf.node_by_name(n).unwrap().ix();
        assert_eq!(s1[id(&w1, "a")], s2[id(&w2, "a")], "upstream unchanged");
        assert_ne!(s1[id(&w1, "b")], s2[id(&w2, "b")], "changed node");
        assert_ne!(s1[id(&w1, "c")], s2[id(&w2, "c")], "descendant deprecated");
    }

    #[test]
    fn changed_nodes_against_snapshot() {
        let w1 = simple(1);
        let none = HashMap::new();
        let s1 = chain_signatures(&w1, &none);
        let snapshot = signature_snapshot(&w1, &s1);

        // Same workflow: nothing changed.
        assert!(changed_nodes(&w1, &s1, &snapshot).is_empty());

        // Bump b: b and c change, a does not.
        let w2 = simple(2);
        let s2 = chain_signatures(&w2, &none);
        let changed = changed_nodes(&w2, &s2, &snapshot);
        let names: Vec<&str> =
            changed.iter().map(|id| w2.dag().payload(*id).name.as_str()).collect();
        assert_eq!(names, vec!["b", "c"]);

        // Empty snapshot (iteration 0): everything is original.
        assert_eq!(changed_nodes(&w1, &s1, &HashMap::new()).len(), 3);
    }

    fn volatile_wf() -> Workflow {
        let mut wf = Workflow::new("v");
        let d = wf.source("d", 1, |_| {
            use helix_data::{Example, ExampleBatch, FeatureVector, Split};
            Ok(Value::examples(ExampleBatch::dense(vec![Example::new(
                FeatureVector::Dense(vec![1.0, 2.0]),
                Some(0.0),
                Split::Train,
            )])))
        });
        let rff = wf.learner("rff", d, Algo::RandomFourier { dim_out: 4, gamma: 0.1 });
        let out = wf.predict("mapped", rff, d);
        wf.output(out);
        wf
    }

    #[test]
    fn volatile_nonce_deprecates_descendants() {
        let wf = volatile_wf();
        let mut nonces = HashMap::new();
        nonces.insert("rff".to_string(), 1u64);
        let s1 = chain_signatures(&wf, &nonces);
        nonces.insert("rff".to_string(), 2u64);
        let s2 = chain_signatures(&wf, &nonces);
        let id = |n: &str| wf.node_by_name(n).unwrap().ix();
        assert_eq!(s1[id("d")], s2[id("d")], "upstream untouched by nonce");
        assert_ne!(s1[id("rff")], s2[id("rff")]);
        assert_ne!(s1[id("mapped")], s2[id("mapped")], "descendant deprecated by nonce");
        // Same nonce → stable (PPR-only iterations can reuse).
        let s3 = chain_signatures(&wf, &nonces);
        assert_eq!(s2, s3);
    }
}
