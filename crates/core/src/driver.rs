//! The session state machine: one iteration as an explicit, resumable
//! driver.
//!
//! [`Session::prepare_iteration`] / [`Session::execute_prepared`] split
//! an iteration at its natural yield point (plan → execute). This module
//! formalizes that split into a [`SessionDriver`] that advances through
//! [`SessionDriver::step`], reporting what it needs next as a [`Step`]:
//!
//! ```text
//!            ┌────────────┐  core granted   ┌─────────┐
//!  step() ──▶│ NeedsCore* │────────────────▶│ NeedsIo*│──┐
//!            └────────────┘  (grant_core)   └─────────┘  │ step()
//!                 ▲  * only when required        * only  │
//!                 │    (pooled runners)       with write │
//!                 │                              backlog ▼
//!            ┌────────┐   execute(prepared)   ┌──────────────────┐
//!            │  Done  │◀──────────────────────│ Ready(Prepared…) │
//!            │ Failed │      (also from       └──────────────────┘
//!            └────────┘   step() on a plan error)
//! ```
//!
//! The point of the formalization is *who waits where*. A solo session
//! drives itself to completion inline ([`SessionDriver::drive`]) — the
//! states collapse into straight-line code. A pooled runner
//! (`helix-serve`) instead **parks** a driver that reports `NeedsCore`
//! and resumes it when the shared [`CoreBudget`] grants a token: a
//! session between steps costs memory, not an OS thread. Either way the
//! underlying lifecycle calls are the same two methods, so the
//! byte-identity contract is untouched — the driver only decides *when*
//! they run, never what they produce.
//!
//! The module also hosts [`speculate_budgeted`], the one shared spelling
//! of the plan lane's budget discipline (lease a token or skip
//! speculation entirely), consumed by both [`Session::run_pipelined`]
//! and the service runner — previously duplicated in both places.

use crate::dsl::Workflow;
use crate::pipeline::{speculate, SpeculationInputs, SpeculativePlan};
use crate::session::{IterationReport, PreparedIteration, Session};
use helix_common::{HelixError, Result};
use helix_exec::CoreBudget;

/// What a [`SessionDriver`] needs next (or produced).
///
/// `NeedsCore` and `NeedsIo` are yield points: the driver made no
/// progress and expects the caller to satisfy the need (grant a core, or
/// let background writes drain — the latter is advisory) before stepping
/// again. `Ready` hands out the prepared iteration for the caller's
/// boundary work (a service publishes the speculation snapshot and
/// releases the session's ordering hold here) before
/// [`SessionDriver::execute`]. `Done`/`Failed` are terminal.
pub enum Step {
    /// The driver requires a base core token before planning. Only
    /// emitted by drivers built with [`SessionDriver::require_core`];
    /// acknowledge with [`SessionDriver::grant_core`].
    NeedsCore,
    /// The session's background write lane still has backlog. Advisory:
    /// planning can proceed on the next `step`, but a runner may prefer
    /// to resume a different session first.
    NeedsIo,
    /// Planning finished (lifecycle steps 1–4½). Perform any boundary
    /// work, then pass the value to [`SessionDriver::execute`].
    Ready(PreparedIteration),
    /// The iteration completed (terminal; from `execute` only).
    Done(Box<IterationReport>),
    /// The iteration failed (terminal; from `step` on a planning error,
    /// or from `execute`).
    Failed(HelixError),
}

enum DriverState {
    AwaitCore,
    AwaitIo,
    Plan,
    AwaitExecute,
    Finished,
}

/// One iteration of one [`Session`], as an explicit state machine.
///
/// Protocol: call [`step`](Self::step) until it yields
/// [`Step::Ready`] (satisfying `NeedsCore` via
/// [`grant_core`](Self::grant_core) as requested), then call
/// [`execute`](Self::execute) exactly once. [`drive`](Self::drive) does
/// all of that inline for solo use.
pub struct SessionDriver<'s, 'w> {
    session: &'s mut Session,
    wf: &'w Workflow,
    hint: Option<SpeculativePlan>,
    require_core: bool,
    core_granted: bool,
    state: DriverState,
}

impl<'s, 'w> SessionDriver<'s, 'w> {
    /// A driver for one iteration of `wf` on `session`.
    pub fn new(session: &'s mut Session, wf: &'w Workflow) -> SessionDriver<'s, 'w> {
        SessionDriver {
            session,
            wf,
            hint: None,
            require_core: false,
            core_granted: false,
            state: DriverState::AwaitCore,
        }
    }

    /// Builder: adopt a speculative plan (validated during planning
    /// exactly as [`Session::prepare_iteration`] documents).
    #[must_use]
    pub fn with_hint(mut self, hint: Option<SpeculativePlan>) -> SessionDriver<'s, 'w> {
        self.hint = hint;
        self
    }

    /// Builder: make [`step`](Self::step) yield [`Step::NeedsCore`]
    /// until [`grant_core`](Self::grant_core) is called. Pooled runners
    /// set this so the *caller* owns the blocking/parking decision; solo
    /// drivers leave it off (the engine's internal parallelism already
    /// self-limits through non-blocking budget leases).
    #[must_use]
    pub fn require_core(mut self) -> SessionDriver<'s, 'w> {
        self.require_core = true;
        self
    }

    /// Acknowledge [`Step::NeedsCore`]: the caller now holds (or does
    /// not need) the iteration's base core token.
    pub fn grant_core(&mut self) {
        self.core_granted = true;
    }

    /// The driven session (for boundary work between `Ready` and
    /// [`execute`](Self::execute), e.g. taking a speculation snapshot).
    pub fn session(&self) -> &Session {
        self.session
    }

    /// Advance the plan side of the state machine. See [`Step`] for the
    /// yield points. Calling `step` after `Ready` (instead of
    /// [`execute`](Self::execute)) or after a terminal step is a
    /// protocol violation and panics.
    pub fn step(&mut self) -> Step {
        loop {
            match self.state {
                DriverState::AwaitCore => {
                    if self.require_core && !self.core_granted {
                        return Step::NeedsCore;
                    }
                    self.state = DriverState::AwaitIo;
                }
                DriverState::AwaitIo => {
                    self.state = DriverState::Plan;
                    if self.session.writer_backlog() > 0 {
                        return Step::NeedsIo;
                    }
                }
                DriverState::Plan => {
                    return match self.session.prepare_iteration(self.wf, self.hint.take()) {
                        Ok(prepared) => {
                            self.state = DriverState::AwaitExecute;
                            Step::Ready(prepared)
                        }
                        Err(err) => {
                            self.state = DriverState::Finished;
                            Step::Failed(err)
                        }
                    };
                }
                DriverState::AwaitExecute => {
                    panic!("SessionDriver::step called after Ready; call execute(prepared)")
                }
                DriverState::Finished => {
                    panic!("SessionDriver::step called after a terminal step")
                }
            }
        }
    }

    /// Run the execute phase of a [`Step::Ready`] plan (lifecycle steps
    /// 5–6). Terminal: returns [`Step::Done`] or [`Step::Failed`].
    pub fn execute(&mut self, prepared: PreparedIteration) -> Step {
        match self.state {
            DriverState::AwaitExecute => {}
            _ => panic!("SessionDriver::execute requires a Ready step first"),
        }
        self.state = DriverState::Finished;
        match self.session.execute_prepared(self.wf, prepared) {
            Ok(report) => Step::Done(Box::new(report)),
            Err(err) => Step::Failed(err),
        }
    }

    /// Drive the iteration to completion inline (the solo entry point:
    /// [`Session::run`] is exactly this).
    pub fn drive(mut self) -> Result<IterationReport> {
        loop {
            match self.step() {
                Step::NeedsCore => self.grant_core(),
                Step::NeedsIo => {}
                Step::Ready(prepared) => {
                    return match self.execute(prepared) {
                        Step::Done(report) => Ok(*report),
                        Step::Failed(err) => Err(err),
                        _ => unreachable!("execute is terminal"),
                    };
                }
                Step::Failed(err) => return Err(err),
                Step::Done(_) => unreachable!("step yields Done only through execute"),
            }
        }
    }
}

/// The plan lane's budget discipline, in one place: speculatively plan
/// `wf` only if a core token is free (or the session is unconstrained).
/// Planning is real CPU work, unlike the sleep-dominated I/O lanes, so
/// an exhausted budget skips speculation entirely — the pre-pipelining
/// behavior, never a stall.
///
/// With `catch_panics`, a panicking speculation degrades to "no hint"
/// instead of unwinding the calling thread (the service runner's choice:
/// a leaked dispatch slot would hang the ticket; if the panic is a real
/// planner bug, the serial re-plan hits it inside the runner's own guard
/// and the ticket reports the error). Without it, the panic propagates —
/// the solo pipelined path resurfaces planner bugs loudly.
pub fn speculate_budgeted(
    inputs: &SpeculationInputs,
    wf: &Workflow,
    budget: Option<&CoreBudget>,
    catch_panics: bool,
) -> Option<SpeculativePlan> {
    let _lease = match budget {
        Some(budget) => match budget.try_acquire_one() {
            Some(lease) => Some(lease),
            None => return None,
        },
        None => None,
    };
    if catch_panics {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| speculate(inputs, wf))).ok()
    } else {
        Some(speculate(inputs, wf))
    }
}

/// One pipelined iteration: drive `wf` to its execute phase, then
/// overlap that execution with a budget-gated speculative plan of
/// `next_wf` on a scoped thread. Returns the report plus the hint for
/// the next iteration (`None` when nothing was speculated). This is
/// [`Session::run_pipelined`]'s loop body — the same overlap the service
/// runner performs across its queue, expressed through the same driver.
pub fn drive_overlapped(
    session: &mut Session,
    wf: &Workflow,
    hint: Option<SpeculativePlan>,
    next_wf: Option<&Workflow>,
) -> Result<(IterationReport, Option<SpeculativePlan>)> {
    let mut driver = SessionDriver::new(session, wf).with_hint(hint);
    let prepared = loop {
        match driver.step() {
            Step::NeedsCore => driver.grant_core(),
            Step::NeedsIo => {}
            Step::Ready(prepared) => break prepared,
            Step::Failed(err) => return Err(err),
            Step::Done(_) => unreachable!("step yields Done only through execute"),
        }
    };
    let step = match next_wf {
        Some(next_wf) => {
            let inputs = driver.session().speculation_snapshot();
            let budget = driver.session().core_budget_arc();
            let (step, spec) = std::thread::scope(|scope| {
                let handle = scope
                    .spawn(move || speculate_budgeted(&inputs, next_wf, budget.as_deref(), false));
                let step = driver.execute(prepared);
                let spec = match handle.join() {
                    Ok(spec) => spec,
                    // A speculation panic is a planner bug, not a
                    // tolerable miss — resurface it loudly.
                    Err(panic) => std::panic::resume_unwind(panic),
                };
                (step, spec)
            });
            return match step {
                Step::Done(report) => Ok((*report, spec)),
                Step::Failed(err) => Err(err),
                _ => unreachable!("execute is terminal"),
            };
        }
        None => driver.execute(prepared),
    };
    match step {
        Step::Done(report) => Ok((*report, None)),
        Step::Failed(err) => Err(err),
        _ => unreachable!("execute is terminal"),
    }
}
