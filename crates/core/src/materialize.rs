//! OPT-MAT-PLAN policies (paper §5.3).
//!
//! OPT-MAT-PLAN — choosing which intermediates to materialize under a
//! storage budget so the *next* iteration is fast — is NP-hard (paper
//! Theorem 3, by reduction from Knapsack). HELIX therefore runs a
//! streaming heuristic (Algorithm 2): when a node goes out of scope,
//! materialize it iff
//!
//! ```text
//! C(n) > 2 · l(n)        and the storage budget admits it,
//! ```
//!
//! where `C(n)` is the *cumulative run time* (Definition 6: the node's own
//! incurred time plus that of all its ancestors this iteration) and `l(n)`
//! is the projected load time. The intuition: materializing (≈ one write,
//! `l`) plus next iteration's load (`l`) must beat recomputing the pruned
//! ancestor chain (`C`).
//!
//! The paper's two comparison extremes are provided as policies too:
//! `Always` (HELIX AM) and `Never` (HELIX NM).
//!
//! [`exact_omp`] implements the exact solver (exponential; tiny DAGs only)
//! used by ablation benches to measure the heuristic's optimality gap, and
//! a test reproduces the §5.3 pathological chain where Algorithm 2
//! over-materializes.

use helix_common::timing::Nanos;
use helix_flow::oep::{NodeCosts, OepProblem, State};
use helix_flow::Dag;

/// Materialization policy (paper §6.1: HELIX OPT / AM / NM).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatStrategy {
    /// Algorithm 2 (HELIX OPT).
    Opt,
    /// Always materialize every out-of-scope node (HELIX AM).
    Always,
    /// Never materialize (HELIX NM).
    Never,
}

/// One streaming materialization decision (Algorithm 2, lines 4–8).
///
/// * `cumulative_nanos` — `C(n)`.
/// * `projected_load_nanos` — `l(n)` under the current disk profile.
/// * `size_bytes` / `budget_remaining_bytes` — storage admission.
pub fn should_materialize(
    strategy: MatStrategy,
    cumulative_nanos: Nanos,
    projected_load_nanos: Nanos,
    size_bytes: u64,
    budget_remaining_bytes: u64,
) -> bool {
    should_materialize_stable(
        strategy,
        cumulative_nanos,
        projected_load_nanos,
        size_bytes,
        budget_remaining_bytes,
        None,
        0.0,
    )
}

/// Algorithm 2 with a hysteresis dead band (ROADMAP stability item).
///
/// The paper's rule compares a *measured* `C(n)` against `2·l(n)`; when
/// the two sides are within scheduling noise of each other the decision
/// flips between reruns, which makes rerun timings (and catalogs)
/// unstable. `band` widens the threshold into a dead zone
/// `[2l·(1−band), 2l·(1+band)]` that remembers the previous decision for
/// the same signature:
///
/// * previously **materialized** → keep materializing until `C` falls
///   below the *lower* edge;
/// * previously **skipped** → start materializing only once `C` clears
///   the *upper* edge;
/// * no history (or `band == 0`) → the paper's strict `C > 2l`.
///
/// The storage-budget admission check is unaffected by the band.
#[allow(clippy::too_many_arguments)]
pub fn should_materialize_stable(
    strategy: MatStrategy,
    cumulative_nanos: Nanos,
    projected_load_nanos: Nanos,
    size_bytes: u64,
    budget_remaining_bytes: u64,
    previous: Option<bool>,
    band: f64,
) -> bool {
    match strategy {
        MatStrategy::Never => false,
        MatStrategy::Always => true,
        MatStrategy::Opt => {
            if size_bytes > budget_remaining_bytes {
                return false;
            }
            // Nanos in this workspace stay far below 2^53, so the f64
            // comparison is exact whenever the band is zero.
            let base = 2.0 * projected_load_nanos as f64;
            let threshold = match previous {
                Some(true) => base * (1.0 - band.clamp(0.0, 1.0)),
                Some(false) => base * (1.0 + band.clamp(0.0, 1.0)),
                None => base,
            };
            cumulative_nanos as f64 > threshold
        }
    }
}

/// Cumulative run time `C(n)` (Definition 6): incurred time of `n` plus
/// every ancestor's incurred time this iteration (pruned nodes contribute
/// zero).
pub fn cumulative_run_time<T>(dag: &Dag<T>, incurred: &[Nanos], node: helix_flow::NodeId) -> Nanos {
    let mut total = incurred[node.ix()];
    let mut seen = vec![false; dag.len()];
    let mut stack: Vec<helix_flow::NodeId> = dag.parents(node).to_vec();
    seen[node.ix()] = true;
    while let Some(p) = stack.pop() {
        if std::mem::replace(&mut seen[p.ix()], true) {
            continue;
        }
        total = total.saturating_add(incurred[p.ix()]);
        stack.extend_from_slice(dag.parents(p));
    }
    total
}

/// Exact OPT-MAT-PLAN for tiny DAGs by exhaustive subset enumeration,
/// under the paper's Theorem 3 assumption `W_{t+1} = W_t` (every node
/// reusable next iteration).
///
/// Minimizes `T_M(W_t) = Σ_{n∈M} write(n) + T*(W_{t+1})` (Equation 3)
/// subject to `Σ size ≤ budget`. Returns the chosen subset as a mask
/// aligned with node ids.
pub fn exact_omp<T>(
    dag: &Dag<T>,
    compute_nanos: &[Nanos],
    load_nanos: &[Nanos],
    sizes: &[u64],
    outputs: &[bool],
    budget_bytes: u64,
) -> Vec<bool> {
    let n = dag.len();
    assert!(n <= 20, "exact OMP is exponential; use only on tiny DAGs");
    let mut best_mask = 0u32;
    let mut best_cost = Nanos::MAX;
    for mask in 0u32..(1u32 << n) {
        let mut write_total: Nanos = 0;
        let mut size_total: u64 = 0;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                // Paper: write time == load time (§5.3).
                write_total = write_total.saturating_add(load_nanos[i]);
                size_total += sizes[i];
            }
        }
        if size_total > budget_bytes {
            continue;
        }
        // T*(W_{t+1}): everything reusable; loads available for M.
        let costs: Vec<NodeCosts> = (0..n)
            .map(|i| {
                let load = (mask & (1 << i) != 0).then_some(load_nanos[i]);
                let mut c = NodeCosts::new(compute_nanos[i], load);
                if outputs[i] {
                    c = c.required();
                }
                c
            })
            .collect();
        let next = OepProblem::new(dag, &costs).solve();
        let total = write_total.saturating_add(next.total_cost);
        if total < best_cost {
            best_cost = total;
            best_mask = mask;
        }
    }
    (0..n).map(|i| best_mask & (1 << i) != 0).collect()
}

/// Simulate Algorithm 2's choices for a whole iteration offline (used by
/// tests and ablations; the engine makes the same decisions online).
/// `incurred` is each node's run time this iteration.
pub fn streaming_omp_choices<T>(
    dag: &Dag<T>,
    strategy: MatStrategy,
    incurred: &[Nanos],
    load_nanos: &[Nanos],
    sizes: &[u64],
    executed: &[bool],
    mut budget_bytes: u64,
) -> Vec<bool> {
    let order = dag.topo_order().expect("acyclic");
    let mut chosen = vec![false; dag.len()];
    for id in order {
        if !executed[id.ix()] {
            continue;
        }
        let c = cumulative_run_time(dag, incurred, id);
        if should_materialize(strategy, c, load_nanos[id.ix()], sizes[id.ix()], budget_bytes) {
            chosen[id.ix()] = true;
            budget_bytes = budget_bytes.saturating_sub(sizes[id.ix()]);
        }
    }
    chosen
}

/// Evaluate `T_M` (Equation 3) for a given materialization choice, under
/// `W_{t+1} = W_t`.
pub fn materialization_run_time<T>(
    dag: &Dag<T>,
    chosen: &[bool],
    compute_nanos: &[Nanos],
    load_nanos: &[Nanos],
    outputs: &[bool],
) -> Nanos {
    let write_total: Nanos =
        chosen.iter().zip(load_nanos).filter(|(c, _)| **c).map(|(_, l)| *l).sum();
    let costs: Vec<NodeCosts> = (0..dag.len())
        .map(|i| {
            let mut c = NodeCosts::new(compute_nanos[i], chosen[i].then_some(load_nanos[i]));
            if outputs[i] {
                c = c.required();
            }
            c
        })
        .collect();
    write_total.saturating_add(OepProblem::new(dag, &costs).solve().total_cost)
}

/// Mini-batch adaptation of Algorithm 2 (paper §5.3, "Mini-Batches"):
/// in stream processing, "1) make materialization decisions using the load
/// and compute time for the first mini batch processed end-to-end; 2)
/// reuse the same decisions for all subsequent mini batches for each
/// operator. This approach avoids dataset fragmentation."
///
/// The planner observes the first batch's per-node metrics, freezes the
/// per-operator choices, and answers O(1) for every later batch.
#[derive(Clone, Debug, Default)]
pub struct MiniBatchPlanner {
    decisions: Option<Vec<bool>>,
}

impl MiniBatchPlanner {
    /// Fresh planner (no batch observed yet).
    pub fn new() -> MiniBatchPlanner {
        MiniBatchPlanner::default()
    }

    /// Whether the first batch has been observed.
    pub fn is_frozen(&self) -> bool {
        self.decisions.is_some()
    }

    /// Observe the first mini batch's measurements and freeze decisions.
    /// Subsequent calls are ignored (the first batch wins, per the paper).
    #[allow(clippy::too_many_arguments)]
    pub fn observe_first_batch<T>(
        &mut self,
        dag: &Dag<T>,
        strategy: MatStrategy,
        incurred: &[Nanos],
        load_nanos: &[Nanos],
        sizes: &[u64],
        executed: &[bool],
        budget_bytes: u64,
    ) {
        if self.decisions.is_none() {
            self.decisions = Some(streaming_omp_choices(
                dag,
                strategy,
                incurred,
                load_nanos,
                sizes,
                executed,
                budget_bytes,
            ));
        }
    }

    /// The frozen decision for a node; `None` until the first batch has
    /// been observed (callers fall back to the online Algorithm 2).
    pub fn decision(&self, node: helix_flow::NodeId) -> Option<bool> {
        self.decisions.as_ref().and_then(|d| d.get(node.ix()).copied())
    }

    /// All frozen decisions (empty before the first batch).
    pub fn decisions(&self) -> &[bool] {
        self.decisions.as_deref().unwrap_or(&[])
    }
}

/// Post-plan helper: which nodes ended the iteration in each state (for
/// Figure 8's S_p/S_l/S_c fractions).
pub fn state_counts(states: &[State]) -> (usize, usize, usize) {
    let mut c = (0, 0, 0);
    for s in states {
        match s {
            State::Compute => c.0 += 1,
            State::Load => c.1 += 1,
            State::Prune => c.2 += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_flow::{Dag, NodeId};

    fn chain(n: usize) -> (Dag<()>, Vec<NodeId>) {
        let mut g = Dag::new();
        let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        (g, ids)
    }

    #[test]
    fn decision_rule_matches_algorithm2() {
        // C > 2l and budget ok → materialize.
        assert!(should_materialize(MatStrategy::Opt, 100, 40, 10, 100));
        // C = 2l → no.
        assert!(!should_materialize(MatStrategy::Opt, 80, 40, 10, 100));
        // Budget exhausted → no.
        assert!(!should_materialize(MatStrategy::Opt, 100, 40, 200, 100));
        // AM ignores the economics; NM ignores everything.
        assert!(should_materialize(MatStrategy::Always, 0, 1_000, 1, 0));
        assert!(!should_materialize(MatStrategy::Never, u64::MAX, 0, 0, u64::MAX));
    }

    #[test]
    fn hysteresis_dead_band_stabilizes_near_threshold_decisions() {
        // l = 40 → strict threshold 80; band 0.25 → dead zone [60, 100].
        let band = 0.25;
        // Inside the dead zone the previous decision sticks…
        for c in [61, 80, 99] {
            assert!(
                should_materialize_stable(MatStrategy::Opt, c, 40, 10, 1_000, Some(true), band),
                "C={c}: a previously materialized node keeps materializing"
            );
            assert!(
                !should_materialize_stable(MatStrategy::Opt, c, 40, 10, 1_000, Some(false), band),
                "C={c}: a previously skipped node stays skipped"
            );
        }
        // …outside it, the measurement wins regardless of history.
        assert!(!should_materialize_stable(MatStrategy::Opt, 59, 40, 10, 1_000, Some(true), band));
        assert!(should_materialize_stable(MatStrategy::Opt, 101, 40, 10, 1_000, Some(false), band));
        // No history or zero band reduce to the paper's strict rule.
        assert!(should_materialize_stable(MatStrategy::Opt, 81, 40, 10, 1_000, None, band));
        assert!(!should_materialize_stable(MatStrategy::Opt, 80, 40, 10, 1_000, None, band));
        assert!(should_materialize_stable(MatStrategy::Opt, 81, 40, 10, 1_000, Some(false), 0.0));
        // Budget admission is band-independent.
        assert!(!should_materialize_stable(
            MatStrategy::Opt,
            1_000,
            1,
            2_000,
            1_000,
            Some(true),
            band
        ));
    }

    #[test]
    fn cumulative_time_sums_ancestors_once() {
        // Diamond: a → {b, c} → d; every node costs 10.
        let mut g: Dag<()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        let incurred = vec![10, 10, 10, 10];
        assert_eq!(cumulative_run_time(&g, &incurred, d), 40, "a counted once, not twice");
        assert_eq!(cumulative_run_time(&g, &incurred, a), 10);
    }

    #[test]
    fn streaming_omp_materializes_expensive_chains() {
        let (g, _) = chain(3);
        // Each node takes 100 to compute; loads cost 10; plenty of budget.
        let incurred = vec![100, 100, 100];
        let loads = vec![10, 10, 10];
        let sizes = vec![100, 100, 100];
        let executed = vec![true, true, true];
        let chosen = streaming_omp_choices(
            &g,
            MatStrategy::Opt,
            &incurred,
            &loads,
            &sizes,
            &executed,
            10_000,
        );
        assert_eq!(chosen, vec![true, true, true], "C grows along the chain: all pass 2l");
    }

    #[test]
    fn streaming_omp_skips_cheap_big_nodes() {
        // MNIST shape: fast compute, huge output → skip (C < 2l).
        let (g, _) = chain(2);
        let incurred = vec![10, 10];
        let loads = vec![1_000, 1_000];
        let sizes = vec![1 << 20, 1 << 20];
        let executed = vec![true, true];
        let chosen = streaming_omp_choices(
            &g,
            MatStrategy::Opt,
            &incurred,
            &loads,
            &sizes,
            &executed,
            u64::MAX,
        );
        assert_eq!(chosen, vec![false, false]);
    }

    #[test]
    fn streaming_omp_respects_budget_in_topo_order() {
        let (g, _) = chain(3);
        let incurred = vec![100, 100, 100];
        let loads = vec![10, 10, 10];
        let sizes = vec![60, 60, 60];
        let executed = vec![true, true, true];
        // Budget fits only the first two.
        let chosen =
            streaming_omp_choices(&g, MatStrategy::Opt, &incurred, &loads, &sizes, &executed, 120);
        assert_eq!(chosen, vec![true, true, false]);
    }

    /// The paper's §5.3 pathological chain: `l_i = i`, `c_i = 3`.
    /// Algorithm 2 materializes *every* node (storage `O(m²)`), while the
    /// exact plan stores only a suffix.
    #[test]
    fn pathological_chain_overspends_vs_exact() {
        let m = 8;
        let (g, _) = chain(m);
        let compute: Vec<Nanos> = vec![3; m];
        let loads: Vec<Nanos> = (1..=m as u64).collect();
        let sizes: Vec<u64> = (1..=m as u64).collect();
        let executed = vec![true; m];
        let outputs: Vec<bool> = (0..m).map(|i| i == m - 1).collect();

        // Streaming choices: C(n_i) = 3(i+1) > 2*l_i = 2(i+1) → all true.
        let streaming = streaming_omp_choices(
            &g,
            MatStrategy::Opt,
            &compute,
            &loads,
            &sizes,
            &executed,
            u64::MAX,
        );
        assert!(streaming.iter().all(|&c| c), "Algorithm 2 materializes the whole chain");

        let exact = exact_omp(&g, &compute, &loads, &sizes, &outputs, u64::MAX);
        let streaming_storage: u64 =
            streaming.iter().zip(&sizes).filter(|(c, _)| **c).map(|(_, s)| *s).sum();
        let exact_storage: u64 =
            exact.iter().zip(&sizes).filter(|(c, _)| **c).map(|(_, s)| *s).sum();
        assert!(
            exact_storage < streaming_storage,
            "exact stores less: {exact_storage} vs {streaming_storage}"
        );
        // And the exact plan's T_M is no worse.
        let tm_exact = materialization_run_time(&g, &exact, &compute, &loads, &outputs);
        let tm_streaming = materialization_run_time(&g, &streaming, &compute, &loads, &outputs);
        assert!(tm_exact <= tm_streaming, "{tm_exact} vs {tm_streaming}");
    }

    #[test]
    fn exact_omp_prefers_cheap_high_value_nodes() {
        // a (expensive to compute, tiny) → b (cheap, huge): store a only.
        let (g, _) = chain(2);
        let compute = vec![1_000, 5];
        let loads = vec![10, 800];
        let sizes = vec![10, 1_000_000];
        let outputs = vec![false, true];
        let chosen = exact_omp(&g, &compute, &loads, &sizes, &outputs, u64::MAX);
        assert!(chosen[0], "expensive node worth storing");
        assert!(!chosen[1], "huge cheap node not worth storing");
    }

    #[test]
    fn state_count_tallies() {
        let states = [State::Compute, State::Load, State::Prune, State::Compute];
        assert_eq!(state_counts(&states), (2, 1, 1));
    }

    #[test]
    fn mini_batch_planner_freezes_first_batch_decisions() {
        let (g, _) = chain(3);
        let mut planner = MiniBatchPlanner::new();
        assert!(!planner.is_frozen());
        assert_eq!(planner.decision(NodeId(0)), None, "no decision before first batch");

        // First batch: expensive chain, cheap loads → materialize all.
        planner.observe_first_batch(
            &g,
            MatStrategy::Opt,
            &[100, 100, 100],
            &[10, 10, 10],
            &[50, 50, 50],
            &[true, true, true],
            u64::MAX,
        );
        assert!(planner.is_frozen());
        assert_eq!(planner.decisions(), &[true, true, true]);

        // Second batch with opposite economics must NOT change decisions
        // (avoiding the paper's "dataset fragmentation").
        planner.observe_first_batch(
            &g,
            MatStrategy::Opt,
            &[1, 1, 1],
            &[1_000, 1_000, 1_000],
            &[50, 50, 50],
            &[true, true, true],
            u64::MAX,
        );
        assert_eq!(planner.decisions(), &[true, true, true]);
        assert_eq!(planner.decision(NodeId(2)), Some(true));
        assert_eq!(planner.decision(NodeId(9)), None, "out-of-range node");
    }

    #[test]
    fn mini_batch_planner_respects_strategy() {
        let (g, _) = chain(2);
        let mut planner = MiniBatchPlanner::new();
        planner.observe_first_batch(
            &g,
            MatStrategy::Never,
            &[100, 100],
            &[1, 1],
            &[1, 1],
            &[true, true],
            u64::MAX,
        );
        assert_eq!(planner.decisions(), &[false, false]);
    }
}
