//! Intra-node micro-batch co-execution (PR 9).
//!
//! PR 3 pipelined *across* iterations; this module overlaps work *inside*
//! one node. A partitionable operator (see
//! [`Operator::partitionable`])
//! is executed as a stream of fixed-boundary partitions through three
//! co-scheduled stages:
//!
//! - a **load lane** that slices the partition input into batch-sized
//!   sub-collections (the stand-in for load/decode I/O),
//! - `1 + leased` **compute lanes** (extra lanes leased from the shared
//!   [`CoreBudget`], exactly like the engine's dispatch width) that run
//!   the operator over individual partitions, and
//! - a **commit lane** (the caller thread) that merges finished
//!   partitions *strictly in partition order* into the node output that
//!   the engine then hands to the staged-commit writer.
//!
//! So compute on batch `k` overlaps the load of batch `k+1`, and the
//! dispatcher's working set stays `O(window × batch)` instead of
//! `O(dataset)`.
//!
//! ## Determinism
//!
//! Byte-identity with whole-frame execution is structural, not lucky:
//!
//! 1. partition boundaries are a pure function of `(input len, batch
//!    rows)` ([`partition_bounds`]) — no timing, no worker count;
//! 2. each partition runs under an [`ExecContext::partition`] carrying
//!    the node seed and the partition's global row offset, so per-row
//!    provenance (`SemanticUnit::origin`) comes out globally indexed;
//! 3. partitions merge strictly in partition order, whatever order lanes
//!    finish in; and
//! 4. on failure the error surfaced is the one from the lowest-numbered
//!    failing partition — the same first-in-row-order error the
//!    whole-frame parallel map would report.
//!
//! Signatures, plans, and OPT-MAT-PLAN decisions never see any of this:
//! batching is an execution detail, like worker count.

use crate::operator::{ExecContext, Operator, PartitionSpec};
use helix_common::timing::{duration_to_nanos, Nanos};
use helix_common::{HelixError, Result};
use helix_data::{ByteSized, DataCollection, Value};
use helix_exec::CoreBudget;
use helix_obs::layer;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Deterministic fixed partition boundaries: contiguous `[start, end)`
/// row ranges of `batch_rows` rows (last may be short). A pure function
/// of `(len, batch_rows)` — this is the whole determinism argument for
/// *where* batches split.
pub fn partition_bounds(len: usize, batch_rows: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    if batch_rows == 0 {
        return vec![(0, len)];
    }
    (0..len).step_by(batch_rows).map(|s| (s, (s + batch_rows).min(len))).collect()
}

/// Copy rows `[start, end)` of a collection into a standalone collection
/// of the same element kind (schema/space handles are shared, rows are
/// cloned — this is the "load/decode" cost the load lane pays).
pub fn slice_collection(dc: &DataCollection, start: usize, end: usize) -> DataCollection {
    match dc {
        DataCollection::Records(b) => DataCollection::Records(helix_data::RecordBatch {
            schema: Arc::clone(&b.schema),
            rows: b.rows[start..end].to_vec(),
        }),
        DataCollection::Units(b) => {
            DataCollection::Units(helix_data::UnitBatch::new(b.units[start..end].to_vec()))
        }
        DataCollection::Examples(b) => DataCollection::Examples(helix_data::ExampleBatch {
            space: Arc::clone(&b.space),
            examples: b.examples[start..end].to_vec(),
        }),
    }
}

/// Append `chunk` onto the in-order accumulator. Chunks arrive in
/// partition order, so plain extension reproduces the whole-frame
/// output element order exactly.
fn append_chunk(acc: &mut Option<DataCollection>, chunk: DataCollection) -> Result<()> {
    let Some(current) = acc else {
        *acc = Some(chunk);
        return Ok(());
    };
    match (current, chunk) {
        (DataCollection::Records(a), DataCollection::Records(b)) => {
            if a.schema.signature() != b.schema.signature() {
                return Err(HelixError::exec("microbatch", "partition output schemas diverged"));
            }
            a.rows.extend(b.rows);
        }
        (DataCollection::Units(a), DataCollection::Units(b)) => {
            a.units.extend(b.units);
        }
        (DataCollection::Examples(a), DataCollection::Examples(b)) => {
            if a.space.signature() != b.space.signature() {
                return Err(HelixError::exec("microbatch", "partition feature spaces diverged"));
            }
            a.examples.extend(b.examples);
        }
        (a, b) => {
            return Err(HelixError::exec(
                "microbatch",
                format!(
                    "partition output kinds diverged: {} vs {}",
                    a.element_kind(),
                    b.element_kind()
                ),
            ));
        }
    }
    Ok(())
}

/// Identity labels stamped onto `batch.*` spans.
pub struct StreamLabels<'a> {
    /// Node name.
    pub node: &'a str,
    /// Owning tenant.
    pub tenant: &'a str,
    /// Iteration ordinal.
    pub iteration: u64,
}

impl StreamLabels<'_> {
    /// Anonymous labels for tests and benches.
    pub fn anonymous() -> StreamLabels<'static> {
        StreamLabels { node: "node", tenant: "solo", iteration: 0 }
    }
}

/// What one streamed execution did — the bench's raw material for
/// overlap and memory-bound reporting. Span intervals are nanos
/// relative to the stream's own start.
#[derive(Clone, Debug, Default)]
pub struct StreamReport {
    /// Partitions executed.
    pub partitions: usize,
    /// Total rows of the partition input.
    pub rows: usize,
    /// Compute lanes used (1 + leased).
    pub lanes: usize,
    /// In-flight partition credit window.
    pub window: usize,
    /// Peak bytes of partition slices resident in the dispatcher
    /// (loaded but not yet merged) — the `O(window × batch)` bound.
    pub peak_inflight_bytes: u64,
    /// Total busy time of the load lane.
    pub load_busy_nanos: Nanos,
    /// Total busy time across compute lanes.
    pub compute_busy_nanos: Nanos,
    /// Wall time of the whole stream.
    pub wall_nanos: Nanos,
    /// Per-partition load intervals `(begin, end)`.
    pub load_spans: Vec<(Nanos, Nanos)>,
    /// Per-partition compute intervals `(begin, end)`.
    pub compute_spans: Vec<(Nanos, Nanos)>,
}

struct Job {
    k: usize,
    base: usize,
    inputs: Vec<Arc<Value>>,
    rows: usize,
    bytes: u64,
}

struct Done {
    k: usize,
    result: Result<Value>,
    bytes: u64,
}

struct Flow {
    issued: usize,
    merged: usize,
    halted: bool,
}

/// Execute `op` as a partition stream and merge the result in partition
/// order. Byte-identical to `op.execute(inputs, ctx)` for any operator
/// honouring its [`PartitionSpec`] contract; see the module docs for the
/// argument. `max_lanes` caps compute lanes; with a `core_budget` the
/// lanes beyond the first are leased (and released when the stream
/// ends), mirroring the engine's dispatch-width policy.
#[allow(clippy::too_many_arguments)]
pub fn execute_streamed(
    op: &dyn Operator,
    spec: &PartitionSpec,
    inputs: &[Arc<Value>],
    ctx: &ExecContext,
    batch_rows: usize,
    max_lanes: usize,
    core_budget: Option<&CoreBudget>,
    labels: &StreamLabels<'_>,
) -> Result<(Value, StreamReport)> {
    let part_input = inputs.get(spec.partition_input).ok_or_else(|| {
        HelixError::exec("microbatch", format!("partition input {} missing", spec.partition_input))
    })?;
    let dc = part_input.as_collection()?;
    let bounds = partition_bounds(dc.len(), batch_rows);
    if bounds.is_empty() {
        // Empty input: nothing to stream; whole-frame is already O(0).
        return Ok((op.execute(inputs, ctx)?, StreamReport::default()));
    }

    let ceiling = max_lanes.max(1).min(bounds.len());
    let lease = core_budget.map(|b| b.try_acquire(ceiling - 1));
    let lanes = match &lease {
        Some(l) => 1 + l.tokens(),
        None => ceiling,
    };
    let window = lanes * 2 + 2;

    let epoch = Instant::now();
    let flow = Mutex::new(Flow { issued: 0, merged: 0, halted: false });
    let cv = Condvar::new();
    let inflight = AtomicU64::new(0);
    let peak = AtomicU64::new(0);
    let load_busy = AtomicU64::new(0);
    let compute_busy = AtomicU64::new(0);
    let load_spans = Mutex::new(Vec::with_capacity(bounds.len()));
    let compute_spans = Mutex::new(Vec::with_capacity(bounds.len()));

    let (in_tx, in_rx) = mpsc::sync_channel::<Job>(window);
    let in_rx = Mutex::new(in_rx);
    let (out_tx, out_rx) = mpsc::channel::<Done>();

    let mut acc: Option<DataCollection> = None;
    let mut failure: Option<HelixError> = None;

    std::thread::scope(|scope| {
        // Load lane: slice partitions in order under a bounded credit
        // window so at most `window` partitions are in flight.
        scope.spawn({
            let (flow, cv) = (&flow, &cv);
            let (inflight, peak, load_busy, load_spans) =
                (&inflight, &peak, &load_busy, &load_spans);
            let bounds = &bounds;
            move || {
                for (k, &(s, e)) in bounds.iter().enumerate() {
                    {
                        let mut f = flow.lock().unwrap();
                        while !f.halted && f.issued - f.merged >= window {
                            f = cv.wait(f).unwrap();
                        }
                        if f.halted {
                            return;
                        }
                        f.issued += 1;
                    }
                    let began = duration_to_nanos(epoch.elapsed());
                    let sp = helix_obs::span(layer::ENGINE, "batch.load")
                        .track(format!("{}/load", labels.node))
                        .tenant(labels.tenant)
                        .iteration(labels.iteration)
                        .node(labels.node)
                        .amount((e - s) as u64);
                    let slice = slice_collection(dc, s, e);
                    let bytes = slice.byte_size();
                    let mut sub = inputs.to_vec();
                    sub[spec.partition_input] = Arc::new(Value::Collection(slice));
                    drop(sp);
                    let ended = duration_to_nanos(epoch.elapsed());
                    load_busy.fetch_add(ended - began, Ordering::Relaxed);
                    load_spans.lock().unwrap().push((began, ended));
                    let now = inflight.fetch_add(bytes, Ordering::SeqCst) + bytes;
                    peak.fetch_max(now, Ordering::SeqCst);
                    if in_tx.send(Job { k, base: s, inputs: sub, rows: e - s, bytes }).is_err() {
                        return;
                    }
                }
                // `in_tx` drops here; lanes drain and exit.
            }
        });

        // Compute lanes: claim jobs from the shared channel, run the
        // partition under an offset context, emit in any finish order.
        for lane in 0..lanes {
            let tx = out_tx.clone();
            let in_rx = &in_rx;
            let (compute_busy, compute_spans) = (&compute_busy, &compute_spans);
            scope.spawn(move || loop {
                let job = { in_rx.lock().unwrap().recv() };
                let Ok(job) = job else { return };
                let began = duration_to_nanos(epoch.elapsed());
                let sp = helix_obs::span(layer::ENGINE, "batch.compute")
                    .track(format!("{}/lane-{lane}", labels.node))
                    .tenant(labels.tenant)
                    .iteration(labels.iteration)
                    .node(labels.node)
                    .lane(lane as u32)
                    .amount(job.rows as u64);
                let pctx = ctx.partition(job.base as u32);
                let result = op.execute(&job.inputs, &pctx);
                drop(sp);
                let ended = duration_to_nanos(epoch.elapsed());
                compute_busy.fetch_add(ended - began, Ordering::Relaxed);
                compute_spans.lock().unwrap().push((began, ended));
                if tx.send(Done { k: job.k, result, bytes: job.bytes }).is_err() {
                    return;
                }
            });
        }
        drop(out_tx);

        // Commit lane (this thread): merge strictly in partition order.
        let mut buffered: BTreeMap<usize, Done> = BTreeMap::new();
        let mut next = 0usize;
        for done in out_rx.iter() {
            inflight.fetch_sub(done.bytes, Ordering::SeqCst);
            if failure.is_some() {
                continue; // drain only; lanes/load wind down via halt
            }
            buffered.insert(done.k, done);
            while failure.is_none() {
                let Some(d) = buffered.remove(&next) else { break };
                match d.result {
                    Ok(v) => {
                        let sp = helix_obs::span(layer::ENGINE, "batch.commit")
                            .track(format!("{}/commit", labels.node))
                            .tenant(labels.tenant)
                            .iteration(labels.iteration)
                            .node(labels.node)
                            .amount(d.bytes);
                        let merged = match v {
                            Value::Collection(c) => append_chunk(&mut acc, c),
                            other => Err(HelixError::exec(
                                "microbatch",
                                format!(
                                    "partitioned operator returned non-collection {:?}",
                                    other.kind()
                                ),
                            )),
                        };
                        drop(sp);
                        if let Err(e) = merged {
                            failure = Some(e);
                        }
                    }
                    // In-order merging makes this the lowest-numbered
                    // failing partition — the whole-frame error.
                    Err(e) => failure = Some(e),
                }
                next += 1;
                let mut f = flow.lock().unwrap();
                f.merged = next;
                if failure.is_some() {
                    f.halted = true;
                }
                cv.notify_all();
            }
            if failure.is_some() {
                buffered.clear();
            }
        }
    });
    drop(lease);

    if let Some(e) = failure {
        return Err(e);
    }
    let acc = acc.ok_or_else(|| HelixError::exec("microbatch", "no partitions merged"))?;
    let report = StreamReport {
        partitions: bounds.len(),
        rows: dc.len(),
        lanes,
        window,
        peak_inflight_bytes: peak.load(Ordering::SeqCst),
        load_busy_nanos: load_busy.load(Ordering::Relaxed),
        compute_busy_nanos: compute_busy.load(Ordering::Relaxed),
        wall_nanos: duration_to_nanos(epoch.elapsed()),
        load_spans: load_spans.into_inner().unwrap(),
        compute_spans: compute_spans.into_inner().unwrap(),
    };
    Ok((Value::Collection(acc), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::extract::FieldExtractor;
    use crate::ops::source::CsvScan;
    use helix_data::{FieldValue, Record, RecordBatch, Schema};

    fn lines(n: usize) -> Arc<Value> {
        let schema = Schema::new(["line"]);
        let rows =
            (0..n).map(|i| Record::train(vec![FieldValue::Text(format!("{i},v{i}"))])).collect();
        Arc::new(Value::records(RecordBatch::new(schema, rows).unwrap()))
    }

    #[test]
    fn bounds_are_fixed_and_exhaustive() {
        assert_eq!(partition_bounds(0, 4), vec![]);
        assert_eq!(partition_bounds(10, 0), vec![(0, 10)]);
        assert_eq!(partition_bounds(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(partition_bounds(4, 4), vec![(0, 4)]);
        assert_eq!(partition_bounds(3, 4), vec![(0, 3)]);
        for (len, batch) in [(1usize, 1usize), (17, 3), (64, 64), (65, 64), (100, 7)] {
            let bounds = partition_bounds(len, batch);
            assert_eq!(bounds.first().unwrap().0, 0);
            assert_eq!(bounds.last().unwrap().1, len);
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            assert_eq!(bounds, partition_bounds(len, batch), "pure function");
        }
    }

    #[test]
    fn streamed_matches_whole_frame_for_scan() {
        let op = CsvScan::new(&["id", "val"]);
        let spec = op.partitionable().unwrap();
        let inputs = [lines(23)];
        let ctx = ExecContext::serial(0);
        let whole = op.execute(&inputs, &ctx).unwrap();
        for batch_rows in [1usize, 4, 23, 24] {
            for lanes in [1usize, 3] {
                let (streamed, report) = execute_streamed(
                    &op,
                    &spec,
                    &inputs,
                    &ctx,
                    batch_rows,
                    lanes,
                    None,
                    &StreamLabels::anonymous(),
                )
                .unwrap();
                assert_eq!(format!("{whole:?}"), format!("{streamed:?}"));
                assert_eq!(report.partitions, partition_bounds(23, batch_rows).len());
                assert_eq!(report.rows, 23);
            }
        }
    }

    #[test]
    fn streamed_origins_are_global() {
        let schema = Schema::new(["age"]);
        let rows = (0..20).map(|i| Record::train(vec![FieldValue::Int(i)])).collect();
        let batch = Arc::new(Value::records(RecordBatch::new(schema, rows).unwrap()));
        let op = FieldExtractor::new("age");
        let spec = op.partitionable().unwrap();
        let (out, _) = execute_streamed(
            &op,
            &spec,
            &[batch],
            &ExecContext::serial(0),
            3,
            4,
            None,
            &StreamLabels::anonymous(),
        )
        .unwrap();
        let binding = out.as_collection().unwrap();
        let units = binding.as_units().unwrap();
        let origins: Vec<u32> = units.units.iter().map(|u| u.origin).collect();
        assert_eq!(origins, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn mid_stream_error_is_first_in_row_order() {
        let schema = Schema::new(["line"]);
        let mut rows: Vec<Record> =
            (0..40).map(|i| Record::train(vec![FieldValue::Text(format!("{i},v{i}"))])).collect();
        rows[13] = Record::train(vec![FieldValue::Text("ragged".into())]);
        rows[31] = Record::train(vec![FieldValue::Text("also,rag,ged".into())]);
        let input = Arc::new(Value::records(RecordBatch::new(schema, rows).unwrap()));
        let op = CsvScan::new(&["id", "val"]);
        let spec = op.partitionable().unwrap();
        let ctx = ExecContext::serial(0);
        let whole_err = op.execute(&[Arc::clone(&input)], &ctx).unwrap_err();
        for batch_rows in [1usize, 5, 64] {
            let err = execute_streamed(
                &op,
                &spec,
                &[Arc::clone(&input)],
                &ctx,
                batch_rows,
                4,
                None,
                &StreamLabels::anonymous(),
            )
            .unwrap_err();
            assert_eq!(format!("{err}"), format!("{whole_err}"));
        }
    }

    #[test]
    fn inflight_stays_bounded_by_window() {
        let op = CsvScan::new(&["id", "val"]);
        let spec = op.partitionable().unwrap();
        let inputs = [lines(1000)];
        let ctx = ExecContext::serial(0);
        let total = inputs[0].as_collection().unwrap().byte_size();
        let (_, report) =
            execute_streamed(&op, &spec, &inputs, &ctx, 10, 2, None, &StreamLabels::anonymous())
                .unwrap();
        assert_eq!(report.partitions, 100);
        // 100 partitions in flight would be ~total; the window keeps the
        // dispatcher's resident slice bytes to a handful of batches.
        assert!(
            report.peak_inflight_bytes < total / 4,
            "peak {} vs total {total}",
            report.peak_inflight_bytes
        );
    }
}
