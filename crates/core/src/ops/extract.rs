//! Extractor operators: record → semantic unit (paper §3.2.2).
//!
//! Every extractor outputs a [`UnitBatch`] aligned with its input
//! collection (`origin` = element index), so the synthesizer can zip any
//! subset of extractors into examples and the optimizer can prune, reuse,
//! or materialize each extractor independently — the granularity at which
//! the Census experiment's feature-engineering iterations operate.

use crate::operator::{ExecContext, Operator, PartitionSpec};
use helix_common::{HelixError, Result};
use helix_data::{FeatureBundle, SemanticUnit, UnitBatch, Value};
use helix_ml::preprocess::QuantileBucketizer;
use std::sync::Arc;

/// The paper's `FieldExtractor("age")`: a single named column becomes a
/// feature — numeric columns yield numeric features, text columns yield
/// categorical `col=value` features.
pub struct FieldExtractor {
    column: String,
}

impl FieldExtractor {
    /// Extract `column`.
    pub fn new(column: impl Into<String>) -> FieldExtractor {
        FieldExtractor { column: column.into() }
    }
}

impl Operator for FieldExtractor {
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        let [input] = inputs else {
            return Err(HelixError::exec("field-extractor", "expects one input"));
        };
        let batch = input.as_collection()?.as_records()?;
        let idx = batch
            .schema
            .index_of(&self.column)
            .ok_or_else(|| HelixError::not_found("column", self.column.clone()))?;
        let column = &self.column;
        let units: Vec<SemanticUnit> = ctx.pool.map(&batch.rows, |row| {
            let features = match &row.values[idx] {
                v @ helix_data::FieldValue::Int(_) | v @ helix_data::FieldValue::Float(_) => {
                    FeatureBundle::Numeric(vec![(column.clone(), v.as_f64().unwrap())])
                }
                helix_data::FieldValue::Text(s) => {
                    FeatureBundle::Categorical(vec![(column.clone(), s.clone())])
                }
                helix_data::FieldValue::Null => FeatureBundle::Empty,
            };
            SemanticUnit { origin: 0, split: row.split, features, key: None }
        });
        Ok(Value::units(with_origins(units, ctx.base_origin())))
    }

    /// Row-local: each unit depends only on its own record.
    fn partitionable(&self) -> Option<PartitionSpec> {
        Some(PartitionSpec::on_input(0))
    }
}

/// The paper's `Bucketizer(ageExt, bins=10)` (Figure 3a line 11): learns
/// quantile boundaries over the *whole* dataset (the full scan HELIX avoids
/// by materializing this node) and emits categorical bucket features.
pub struct BucketizerExtractor {
    column: String,
    bins: usize,
}

impl BucketizerExtractor {
    /// Discretize `column` into `bins` quantile buckets.
    pub fn new(column: impl Into<String>, bins: usize) -> BucketizerExtractor {
        BucketizerExtractor { column: column.into(), bins }
    }
}

impl Operator for BucketizerExtractor {
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        let [input] = inputs else {
            return Err(HelixError::exec("bucketizer", "expects one input"));
        };
        let batch = input.as_collection()?.as_records()?;
        let idx = batch
            .schema
            .index_of(&self.column)
            .ok_or_else(|| HelixError::not_found("column", self.column.clone()))?;
        // Learning pass: collect every value (train AND test share the same
        // discretization — the paper's unified-DPR guarantee).
        let values: Vec<f64> = batch.rows.iter().filter_map(|r| r.values[idx].as_f64()).collect();
        let model = QuantileBucketizer { bins: self.bins }.fit(&values)?;
        let name = format!("{}_bucket", self.column);
        let units: Vec<SemanticUnit> = ctx.pool.map(&batch.rows, |row| {
            let features = match row.values[idx].as_f64() {
                Some(v) => FeatureBundle::Categorical(vec![(
                    name.clone(),
                    QuantileBucketizer::transform(&model, v).to_string(),
                )]),
                None => FeatureBundle::Empty,
            };
            SemanticUnit { origin: 0, split: row.split, features, key: None }
        });
        Ok(Value::units(with_origins(units, ctx.base_origin())))
    }
    // Deliberately NOT partitionable: the quantile fit is a global pass
    // over every row, so a partition's buckets would diverge from the
    // whole-frame discretization.
}

/// The paper's `InteractionFeature(Array(eduExt, occExt))` (Figure 3a line
/// 12): the cross product of two extractors' categorical features.
pub struct InteractionFeature;

impl Operator for InteractionFeature {
    fn execute(&self, inputs: &[Arc<Value>], _ctx: &ExecContext) -> Result<Value> {
        let [a, b] = inputs else {
            return Err(HelixError::exec("interaction", "expects two inputs"));
        };
        let a = a.as_collection()?.as_units()?;
        let b = b.as_collection()?.as_units()?;
        if a.len() != b.len() {
            return Err(HelixError::exec(
                "interaction",
                format!("misaligned inputs: {} vs {} units", a.len(), b.len()),
            ));
        }
        let mut units = Vec::with_capacity(a.len());
        for (ua, ub) in a.units.iter().zip(&b.units) {
            let features = match (&ua.features, &ub.features) {
                (FeatureBundle::Categorical(ka), FeatureBundle::Categorical(kb)) => {
                    let mut crossed = Vec::with_capacity(ka.len() * kb.len());
                    for (fa, va) in ka {
                        for (fb, vb) in kb {
                            crossed.push((format!("{fa}x{fb}"), format!("{va}x{vb}")));
                        }
                    }
                    FeatureBundle::Categorical(crossed)
                }
                _ => FeatureBundle::Empty,
            };
            units.push(SemanticUnit { origin: ua.origin, split: ua.split, features, key: None });
        }
        Ok(Value::units(UnitBatch::new(units)))
    }
}

/// Tokenize a text column into token units (the Genomics/IE corpora's
/// first DPR step; the paper used CoreNLP tokenization).
pub struct TokenizeColumn {
    column: String,
    /// Preserve case (needed for the IE person-name features).
    cased: bool,
    /// Drop stop words.
    remove_stop_words: bool,
}

impl TokenizeColumn {
    /// Lowercasing, stop-word-removing tokenizer.
    pub fn new(column: impl Into<String>) -> TokenizeColumn {
        TokenizeColumn { column: column.into(), cased: false, remove_stop_words: true }
    }

    /// Case-preserving variant (keeps stop words too).
    pub fn cased(column: impl Into<String>) -> TokenizeColumn {
        TokenizeColumn { column: column.into(), cased: true, remove_stop_words: false }
    }
}

impl Operator for TokenizeColumn {
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        let [input] = inputs else {
            return Err(HelixError::exec("tokenize", "expects one input"));
        };
        let batch = input.as_collection()?.as_records()?;
        let idx = batch
            .schema
            .index_of(&self.column)
            .ok_or_else(|| HelixError::not_found("column", self.column.clone()))?;
        let units: Vec<SemanticUnit> = ctx.pool.map(&batch.rows, |row| {
            let text = row.values[idx].as_text().unwrap_or("");
            let tokens = if self.cased {
                helix_ml::text::tokenize_cased(text)
            } else {
                let t = helix_ml::text::tokenize(text);
                if self.remove_stop_words {
                    helix_ml::text::remove_stop_words(t)
                } else {
                    t
                }
            };
            SemanticUnit {
                origin: 0,
                split: row.split,
                features: FeatureBundle::Tokens(tokens),
                key: None,
            }
        });
        Ok(Value::units(with_origins(units, ctx.base_origin())))
    }

    /// Row-local: tokenization never looks across rows.
    fn partitionable(&self) -> Option<PartitionSpec> {
        Some(PartitionSpec::on_input(0))
    }
}

/// Arbitrary user-defined extractor over records (the paper's embedded
/// Scala UDFs; here a Rust closure with an explicit version token carried
/// by the DSL).
pub struct UdfExtractor<F> {
    udf: F,
}

impl<F> UdfExtractor<F>
where
    F: Fn(&helix_data::Record, &helix_data::Schema) -> FeatureBundle + Send + Sync,
{
    /// Wrap the closure.
    pub fn new(udf: F) -> Self {
        UdfExtractor { udf }
    }
}

impl<F> Operator for UdfExtractor<F>
where
    F: Fn(&helix_data::Record, &helix_data::Schema) -> FeatureBundle + Send + Sync,
{
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        let [input] = inputs else {
            return Err(HelixError::exec("udf-extractor", "expects one input"));
        };
        let batch = input.as_collection()?.as_records()?;
        let schema = &batch.schema;
        let units: Vec<SemanticUnit> = ctx.pool.map(&batch.rows, |row| SemanticUnit {
            origin: 0,
            split: row.split,
            features: (self.udf)(row, schema),
            key: None,
        });
        Ok(Value::units(with_origins(units, ctx.base_origin())))
    }

    /// Row-local by construction: the UDF sees one record at a time.
    fn partitionable(&self) -> Option<PartitionSpec> {
        Some(PartitionSpec::on_input(0))
    }
}

/// Stamp sequential origins onto parallel-map output (the map preserves
/// input order, so index == origin). `base` is the global index of the
/// first row — 0 for whole-frame execution, the partition's start offset
/// under micro-batch streaming — so streamed and whole-frame origins are
/// byte-identical.
fn with_origins(mut units: Vec<SemanticUnit>, base: u32) -> UnitBatch {
    for (i, u) in units.iter_mut().enumerate() {
        u.origin = base + i as u32;
    }
    UnitBatch::new(units)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::{FieldValue, Record, RecordBatch, Schema, Split};

    fn census_batch() -> Arc<Value> {
        let schema = Schema::new(["age", "education"]);
        let rows = vec![
            Record::train(vec![FieldValue::Int(25), FieldValue::Text("BS".into())]),
            Record::train(vec![FieldValue::Int(45), FieldValue::Text("PhD".into())]),
            Record::test(vec![FieldValue::Int(65), FieldValue::Null]),
        ];
        Arc::new(Value::records(RecordBatch::new(schema, rows).unwrap()))
    }

    #[test]
    fn field_extractor_types() {
        let out =
            FieldExtractor::new("age").execute(&[census_batch()], &ExecContext::serial(0)).unwrap();
        let binding = out.as_collection().unwrap();
        let units = binding.as_units().unwrap();
        assert_eq!(units.len(), 3);
        assert_eq!(units.units[0].features, FeatureBundle::Numeric(vec![("age".into(), 25.0)]));
        assert_eq!(units.units[0].origin, 0);
        assert_eq!(units.units[2].split, Split::Test);

        let out = FieldExtractor::new("education")
            .execute(&[census_batch()], &ExecContext::serial(0))
            .unwrap();
        let binding = out.as_collection().unwrap();
        let units = binding.as_units().unwrap();
        assert_eq!(
            units.units[1].features,
            FeatureBundle::Categorical(vec![("education".into(), "PhD".into())])
        );
        assert_eq!(units.units[2].features, FeatureBundle::Empty, "null → empty bundle");
    }

    #[test]
    fn partition_context_offsets_origins() {
        let ctx = ExecContext::serial(0).partition(10);
        let out = FieldExtractor::new("age").execute(&[census_batch()], &ctx).unwrap();
        let binding = out.as_collection().unwrap();
        let units = binding.as_units().unwrap();
        assert_eq!(units.units.iter().map(|u| u.origin).collect::<Vec<_>>(), vec![10, 11, 12]);
    }

    #[test]
    fn missing_column_is_an_error() {
        assert!(FieldExtractor::new("nope")
            .execute(&[census_batch()], &ExecContext::serial(0))
            .is_err());
    }

    #[test]
    fn bucketizer_produces_bucket_categories() {
        let out = BucketizerExtractor::new("age", 2)
            .execute(&[census_batch()], &ExecContext::serial(0))
            .unwrap();
        let binding = out.as_collection().unwrap();
        let units = binding.as_units().unwrap();
        let get_bucket = |i: usize| match &units.units[i].features {
            FeatureBundle::Categorical(kv) => kv[0].1.clone(),
            other => panic!("expected categorical, got {other:?}"),
        };
        assert_ne!(get_bucket(0), get_bucket(2), "25 and 65 fall in different buckets");
    }

    #[test]
    fn interaction_crosses_categoricals() {
        let edu = FieldExtractor::new("education")
            .execute(&[census_batch()], &ExecContext::serial(0))
            .unwrap();
        let age_bucket = BucketizerExtractor::new("age", 2)
            .execute(&[census_batch()], &ExecContext::serial(0))
            .unwrap();
        let out = InteractionFeature
            .execute(&[Arc::new(edu), Arc::new(age_bucket)], &ExecContext::serial(0))
            .unwrap();
        let binding = out.as_collection().unwrap();
        let units = binding.as_units().unwrap();
        match &units.units[0].features {
            FeatureBundle::Categorical(kv) => {
                assert_eq!(kv.len(), 1);
                assert!(kv[0].0.contains('x'), "crossed name: {}", kv[0].0);
            }
            other => panic!("expected categorical, got {other:?}"),
        }
        // Row with a null education (Empty bundle) crosses to Empty.
        assert_eq!(units.units[2].features, FeatureBundle::Empty);
    }

    #[test]
    fn tokenizer_modes() {
        let schema = Schema::new(["text"]);
        let batch = Arc::new(Value::records(
            RecordBatch::new(
                schema,
                vec![Record::train(vec![FieldValue::Text("The Gene is Active".into())])],
            )
            .unwrap(),
        ));
        let lower = TokenizeColumn::new("text")
            .execute(&[Arc::clone(&batch)], &ExecContext::serial(0))
            .unwrap();
        let lower_binding = lower.as_collection().unwrap();
        match &lower_binding.as_units().unwrap().units[0].features {
            FeatureBundle::Tokens(ts) => assert_eq!(ts, &vec!["gene", "active"]),
            other => panic!("{other:?}"),
        }
        let cased =
            TokenizeColumn::cased("text").execute(&[batch], &ExecContext::serial(0)).unwrap();
        let cased_binding = cased.as_collection().unwrap();
        match &cased_binding.as_units().unwrap().units[0].features {
            FeatureBundle::Tokens(ts) => {
                assert_eq!(ts, &vec!["The", "Gene", "is", "Active"])
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn udf_extractor_runs_closure() {
        let op = UdfExtractor::new(|row: &Record, schema: &Schema| {
            let idx = schema.index_of("age").unwrap();
            let age = row.values[idx].as_f64().unwrap_or(0.0);
            FeatureBundle::Numeric(vec![("age_squared".into(), age * age)])
        });
        let out = op.execute(&[census_batch()], &ExecContext::serial(0)).unwrap();
        let binding = out.as_collection().unwrap();
        let units = binding.as_units().unwrap();
        assert_eq!(
            units.units[1].features,
            FeatureBundle::Numeric(vec![("age_squared".into(), 2025.0)])
        );
    }
}
