//! Data sources and parsing operators (paper: `FileSource`, `Scanner`).

use crate::operator::{ExecContext, Operator, PartitionSpec, ProvenanceInputs};
use helix_common::{HelixError, Result};
use helix_data::{Record, RecordBatch, Schema, Value};
use std::sync::Arc;

/// A data source backed by a user closure (synthetic generators, file
/// readers). The DSL couples it with an explicit version token so change
/// tracking can tell "same generator" from "new data". A generator that
/// draws on the context seed/RNG (synthetic random data) must be
/// declared `seeded` so the tracker keys its output by seed.
pub struct ClosureSource<F> {
    generate: F,
    seeded: bool,
}

impl<F> ClosureSource<F>
where
    F: Fn(&ExecContext) -> Result<Value> + Send + Sync,
{
    /// Wrap a generator closure that does not consume the seed.
    pub fn new(generate: F) -> Self {
        ClosureSource { generate, seeded: false }
    }

    /// Wrap a generator closure that draws on the context seed/RNG.
    pub fn seeded(generate: F) -> Self {
        ClosureSource { generate, seeded: true }
    }
}

impl<F> Operator for ClosureSource<F>
where
    F: Fn(&ExecContext) -> Result<Value> + Send + Sync,
{
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        if !inputs.is_empty() {
            return Err(HelixError::exec("source", "sources take no inputs"));
        }
        (self.generate)(ctx)
    }

    fn byte_affecting_inputs(&self) -> ProvenanceInputs {
        if self.seeded {
            ProvenanceInputs::SEED
        } else {
            ProvenanceInputs::NONE
        }
    }
}

/// The paper's `CSVScanner` (Figure 3a line 4): parses a collection of raw
/// lines (single-column records) into typed, named columns.
pub struct CsvScan {
    schema: Arc<Schema>,
}

impl CsvScan {
    /// Scanner producing `columns`.
    pub fn new(columns: &[&str]) -> CsvScan {
        CsvScan { schema: Schema::new(columns.iter().copied()) }
    }
}

impl Operator for CsvScan {
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        let [input] = inputs else {
            return Err(HelixError::exec("csv-scan", "expects exactly one input"));
        };
        let lines = input.as_collection()?.as_records()?;
        let arity = self.schema.arity();
        let rows: Vec<Result<Record>> = ctx.pool.map(&lines.rows, |row| {
            let line = row.values.first().and_then(|v| v.as_text()).unwrap_or("");
            let values: Vec<helix_data::FieldValue> =
                line.split(',').map(helix_data::FieldValue::infer).collect();
            if values.len() != arity {
                return Err(HelixError::exec(
                    "csv-scan",
                    format!("line has {} cells, expected {arity}", values.len()),
                ));
            }
            Ok(Record { values, split: row.split })
        });
        let rows: Result<Vec<Record>> = rows.into_iter().collect();
        Ok(Value::records(RecordBatch::new(Arc::clone(&self.schema), rows?)?))
    }

    /// Line-local parse: any row-range split concatenates to the
    /// whole-frame parse (first parse error in row order either way).
    fn partitionable(&self) -> Option<PartitionSpec> {
        Some(PartitionSpec::on_input(0))
    }
}

/// Generic flat-mapping Scanner (paper §3.2.2: "for each input element, it
/// adds zero or more elements to the output DC. Thus, it can also be used
/// to perform filtering"). Used by the IE workload to split articles into
/// sentences.
pub struct RecordScan<F> {
    out_schema: Arc<Schema>,
    map: F,
}

impl<F> RecordScan<F>
where
    F: Fn(&Record, &Schema) -> Vec<Record> + Send + Sync,
{
    /// Scanner emitting records under `out_schema`.
    pub fn new(out_schema: Arc<Schema>, map: F) -> Self {
        RecordScan { out_schema, map }
    }
}

impl<F> Operator for RecordScan<F>
where
    F: Fn(&Record, &Schema) -> Vec<Record> + Send + Sync,
{
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        let [input] = inputs else {
            return Err(HelixError::exec("scan", "expects exactly one input"));
        };
        let batch = input.as_collection()?.as_records()?;
        let schema = &batch.schema;
        let chunks: Vec<Vec<Record>> = ctx.pool.map(&batch.rows, |row| (self.map)(row, schema));
        let mut rows = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for mut chunk in chunks {
            for r in &mut chunk {
                if r.values.len() != self.out_schema.arity() {
                    return Err(HelixError::exec(
                        "scan",
                        format!(
                            "udf produced {} values, schema expects {}",
                            r.values.len(),
                            self.out_schema.arity()
                        ),
                    ));
                }
            }
            rows.append(&mut chunk);
        }
        Ok(Value::records(RecordBatch::new(Arc::clone(&self.out_schema), rows)?))
    }

    /// Flat-map is row-local: per-partition concat of per-row chunks
    /// equals the whole-frame concat.
    fn partitionable(&self) -> Option<PartitionSpec> {
        Some(PartitionSpec::on_input(0))
    }
}

/// Build the single-column "raw lines" batch a [`CsvScan`] consumes.
pub fn lines_batch(train: &str, test: &str) -> Result<RecordBatch> {
    let schema = Schema::new(["line"]);
    let mut rows = Vec::new();
    for line in train.lines().filter(|l| !l.trim().is_empty()) {
        rows.push(Record::train(vec![helix_data::FieldValue::Text(line.to_string())]));
    }
    for line in test.lines().filter(|l| !l.trim().is_empty()) {
        rows.push(Record::test(vec![helix_data::FieldValue::Text(line.to_string())]));
    }
    RecordBatch::new(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::{FieldValue, Split};

    #[test]
    fn csv_scan_parses_lines() {
        let lines = lines_batch("30,BS,1\n41,PhD,0\n", "55,MS,1\n").unwrap();
        let scan = CsvScan::new(&["age", "edu", "target"]);
        let out =
            scan.execute(&[Arc::new(Value::records(lines))], &ExecContext::serial(0)).unwrap();
        let batch_binding = out.as_collection().unwrap();
        let batch = batch_binding.as_records().unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.cell(0, "age"), Some(&FieldValue::Int(30)));
        assert_eq!(batch.cell(1, "edu").unwrap().as_text(), Some("PhD"));
        assert_eq!(batch.rows[2].split, Split::Test);
    }

    #[test]
    fn csv_scan_rejects_ragged_lines() {
        let lines = lines_batch("1,2\n", "").unwrap();
        let scan = CsvScan::new(&["a", "b", "c"]);
        assert!(scan.execute(&[Arc::new(Value::records(lines))], &ExecContext::serial(0)).is_err());
    }

    #[test]
    fn record_scan_flat_maps_and_filters() {
        let schema = Schema::new(["text"]);
        let batch = RecordBatch::new(
            schema,
            vec![
                Record::train(vec![FieldValue::Text("one. two.".into())]),
                Record::train(vec![FieldValue::Text("".into())]),
            ],
        )
        .unwrap();
        let out_schema = Schema::new(["sentence"]);
        let scan = RecordScan::new(Arc::clone(&out_schema), |row, schema| {
            let idx = schema.index_of("text").unwrap();
            let text = row.values[idx].as_text().unwrap_or("");
            helix_ml::text::split_sentences(text)
                .into_iter()
                .map(|s| Record { values: vec![FieldValue::Text(s.to_string())], split: row.split })
                .collect()
        });
        let out =
            scan.execute(&[Arc::new(Value::records(batch))], &ExecContext::serial(0)).unwrap();
        let out_binding = out.as_collection().unwrap();
        let records = out_binding.as_records().unwrap();
        assert_eq!(records.len(), 2, "empty article filtered, two sentences kept");
    }

    #[test]
    fn source_rejects_inputs() {
        let src =
            ClosureSource::new(|_ctx: &ExecContext| Ok(Value::Scalar(helix_data::Scalar::I64(1))));
        let dummy = Arc::new(Value::Scalar(helix_data::Scalar::I64(0)));
        assert!(src.execute(&[dummy], &ExecContext::serial(0)).is_err());
        assert!(src.execute(&[], &ExecContext::serial(0)).is_ok());
    }
}
