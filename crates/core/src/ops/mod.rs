//! The built-in operator library.
//!
//! Covers the basis functions `F` of paper §3.1 with concrete, reusable
//! operators:
//!
//! | paper basis fn        | operators here                                   |
//! |-----------------------|--------------------------------------------------|
//! | parsing               | [`source::CsvScan`], [`source::RecordScan`]      |
//! | join                  | [`synth::KbJoin`]                                |
//! | feature extraction    | [`extract::FieldExtractor`], [`extract::TokenizeColumn`], [`extract::UdfExtractor`] |
//! | feature transformation| [`extract::BucketizerExtractor`], learned transforms applied by [`learn::Predict`] |
//! | feature concatenation | [`synth::AssembleExamples`]                      |
//! | learning              | [`learn::Learner`] (LR, k-means, word2vec, NB, RFF) |
//! | inference             | [`learn::Predict`], [`synth::EmbedEntities`]     |
//! | reduce                | [`reduce`] (accuracy, F1, inertia, UDF)          |

pub mod extract;
pub mod learn;
pub mod reduce;
pub mod source;
pub mod synth;

pub use learn::Algo;
