//! Reducer operators: PPR computations with data-size-independent outputs
//! (paper §3.1: "We refer to a computation with output sizes independent of
//! input sizes as a reduce").

use crate::operator::{ExecContext, Operator};
use helix_common::{HelixError, Result};
use helix_data::{Scalar, Split, Value};
use helix_ml::metrics::{accuracy, Confusion};
use std::sync::Arc;

/// The paper's `checkResults` (Figure 3a lines 17–20): prediction accuracy
/// over the test split of an example collection.
pub struct AccuracyReducer;

impl Operator for AccuracyReducer {
    fn execute(&self, inputs: &[Arc<Value>], _ctx: &ExecContext) -> Result<Value> {
        let pairs = test_pairs(inputs)?;
        Ok(Value::Scalar(Scalar::Metrics(vec![
            ("accuracy".into(), accuracy(&pairs)),
            ("test_examples".into(), pairs.len() as f64),
        ])))
    }
}

/// Precision / recall / F1 over the test split (the IE workflow's
/// evaluation).
pub struct F1Reducer;

impl Operator for F1Reducer {
    fn execute(&self, inputs: &[Arc<Value>], _ctx: &ExecContext) -> Result<Value> {
        let pairs = test_pairs(inputs)?;
        let confusion = Confusion::from_pairs(&pairs);
        Ok(Value::Scalar(Scalar::Metrics(vec![
            ("precision".into(), confusion.precision()),
            ("recall".into(), confusion.recall()),
            ("f1".into(), confusion.f1()),
            ("test_examples".into(), pairs.len() as f64),
        ])))
    }
}

/// Cluster-size summary for unsupervised workloads (the Genomics
/// workflow's "more qualitative and exploratory evaluations", §6.2).
pub struct ClusterSummaryReducer {
    /// Number of clusters expected (sizes reported per cluster id).
    pub k: usize,
}

impl Operator for ClusterSummaryReducer {
    fn execute(&self, inputs: &[Arc<Value>], _ctx: &ExecContext) -> Result<Value> {
        let [input] = inputs else {
            return Err(HelixError::exec("cluster-summary", "expects one input"));
        };
        let batch = input.as_collection()?.as_examples()?;
        let mut sizes = vec![0f64; self.k];
        for e in &batch.examples {
            if let Some(c) = e.prediction {
                let c = c as usize;
                if c < self.k {
                    sizes[c] += 1.0;
                }
            }
        }
        let mut metrics: Vec<(String, f64)> =
            sizes.iter().enumerate().map(|(c, n)| (format!("cluster_{c}"), *n)).collect();
        metrics.push(("clusters".into(), self.k as f64));
        Ok(Value::Scalar(Scalar::Metrics(metrics)))
    }
}

/// Arbitrary scalar UDF (the paper's Reducer with an embedded Scala UDF;
/// here a Rust closure with an explicit version token carried by the DSL).
pub struct UdfReducer<F> {
    udf: F,
}

impl<F> UdfReducer<F>
where
    F: Fn(&Value, &ExecContext) -> Result<Value> + Send + Sync,
{
    /// Wrap the closure.
    pub fn new(udf: F) -> Self {
        UdfReducer { udf }
    }
}

impl<F> Operator for UdfReducer<F>
where
    F: Fn(&Value, &ExecContext) -> Result<Value> + Send + Sync,
{
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        let [input] = inputs else {
            return Err(HelixError::exec("udf-reducer", "expects one input"));
        };
        let out = (self.udf)(input, ctx)?;
        match out {
            Value::Scalar(_) => Ok(out),
            other => Err(HelixError::exec(
                "udf-reducer",
                format!("reducers must output scalars, got {:?}", other.kind()),
            )),
        }
    }
}

/// N-ary twin of [`UdfReducer`]: wraps a multi-input scalar UDF,
/// enforcing the declared arity and the reducer invariant (scalar
/// output) that the type system cannot check.
pub struct UdfReducerN<F> {
    arity: usize,
    udf: F,
}

impl<F> UdfReducerN<F>
where
    F: Fn(&[Arc<Value>], &ExecContext) -> Result<Value> + Send + Sync,
{
    /// Wrap the closure, remembering the declared input count.
    pub fn new(arity: usize, udf: F) -> Self {
        UdfReducerN { arity, udf }
    }
}

impl<F> Operator for UdfReducerN<F>
where
    F: Fn(&[Arc<Value>], &ExecContext) -> Result<Value> + Send + Sync,
{
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        if inputs.len() != self.arity {
            return Err(HelixError::exec(
                "udf-reducer-n",
                format!("expects {} inputs, got {}", self.arity, inputs.len()),
            ));
        }
        let out = (self.udf)(inputs, ctx)?;
        match out {
            Value::Scalar(_) => Ok(out),
            other => Err(HelixError::exec(
                "udf-reducer-n",
                format!("reducers must output scalars, got {:?}", other.kind()),
            )),
        }
    }
}

/// `(truth, prediction)` pairs over the test split.
fn test_pairs(inputs: &[Arc<Value>]) -> Result<Vec<(f64, f64)>> {
    let [input] = inputs else {
        return Err(HelixError::exec("reducer", "expects one input"));
    };
    let batch = input.as_collection()?.as_examples()?;
    Ok(batch
        .examples
        .iter()
        .filter(|e| e.split == Split::Test)
        .filter_map(|e| Some((e.label?, e.prediction?)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::{Example, ExampleBatch, FeatureVector};

    fn predicted_batch() -> Arc<Value> {
        let mk = |label: f64, pred: f64, split: Split| {
            let mut e = Example::new(FeatureVector::zeros(1), Some(label), split);
            e.prediction = Some(pred);
            e
        };
        Arc::new(Value::examples(ExampleBatch::dense(vec![
            mk(1.0, 0.9, Split::Test),
            mk(0.0, 0.2, Split::Test),
            mk(1.0, 0.1, Split::Test),
            mk(0.0, 0.9, Split::Train), // train split is excluded
        ])))
    }

    #[test]
    fn accuracy_reducer_uses_test_split_only() {
        let out = AccuracyReducer.execute(&[predicted_batch()], &ExecContext::serial(0)).unwrap();
        let scalar = out.as_scalar().unwrap();
        assert!((scalar.metric("accuracy").unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(scalar.metric("test_examples"), Some(3.0));
    }

    #[test]
    fn f1_reducer_metrics() {
        let out = F1Reducer.execute(&[predicted_batch()], &ExecContext::serial(0)).unwrap();
        let scalar = out.as_scalar().unwrap();
        assert_eq!(scalar.metric("precision"), Some(1.0));
        assert!((scalar.metric("recall").unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cluster_summary_counts() {
        let mk = |pred: f64| {
            let mut e = Example::new(FeatureVector::zeros(1), None, Split::Train);
            e.prediction = Some(pred);
            e
        };
        let batch = Arc::new(Value::examples(ExampleBatch::dense(vec![mk(0.0), mk(0.0), mk(1.0)])));
        let out =
            ClusterSummaryReducer { k: 2 }.execute(&[batch], &ExecContext::serial(0)).unwrap();
        let scalar = out.as_scalar().unwrap();
        assert_eq!(scalar.metric("cluster_0"), Some(2.0));
        assert_eq!(scalar.metric("cluster_1"), Some(1.0));
    }

    #[test]
    fn udf_reducer_enforces_scalar_output() {
        let ok =
            UdfReducer::new(|_v: &Value, _ctx: &ExecContext| Ok(Value::Scalar(Scalar::F64(1.0))));
        assert!(ok.execute(&[predicted_batch()], &ExecContext::serial(0)).is_ok());
        let bad = UdfReducer::new(|v: &Value, _ctx: &ExecContext| Ok(v.clone()));
        assert!(bad.execute(&[predicted_batch()], &ExecContext::serial(0)).is_err());
    }
}
