//! Learning and inference operators (paper §3.2.2, `Learner`).
//!
//! The paper's Learner interface couples learning and inference in one
//! operator; we expose them as two DAG nodes — the model and the inference
//! output — which is strictly finer-grained for the optimizer (the model
//! can be reused while inference recomputes, exactly the Census Figure 3
//! scenario where `predictions` is deprecated by a model change but
//! `income` is not).

use crate::operator::{ExecContext, Operator, PartitionSpec, ProvenanceInputs};
use helix_common::{HelixError, Result};
use helix_data::{Example, ExampleBatch, FeatureBundle, Model, TransformModel, Value};
use helix_ml::{KMeans, LogisticRegression, NaiveBayes, RandomFourierFeatures, Word2Vec};
use std::sync::Arc;

/// The learning algorithms available to `Learner` declarations.
#[derive(Clone, Debug)]
pub enum Algo {
    /// Logistic regression (`modelType="LR"`), with the paper's regParam.
    LogisticRegression {
        /// L2 regularization strength.
        l2: f64,
        /// SGD epochs.
        epochs: usize,
    },
    /// K-means over example vectors.
    KMeans {
        /// Cluster count.
        k: usize,
    },
    /// Skip-gram word2vec over token units.
    Word2Vec {
        /// Embedding dimensionality.
        dim: usize,
        /// Training epochs.
        epochs: usize,
    },
    /// Multinomial naive Bayes.
    NaiveBayes {
        /// Laplace smoothing.
        alpha: f64,
    },
    /// Random Fourier features — *volatile*: the projection is re-drawn on
    /// every actual execution (paper §6.2: MNIST's nondeterministic DPR).
    RandomFourier {
        /// Output dimensionality.
        dim_out: usize,
        /// Kernel bandwidth.
        gamma: f64,
    },
}

impl Algo {
    /// Parameter rendering for declaration signatures.
    pub fn sig_params(&self) -> Vec<String> {
        match self {
            Algo::LogisticRegression { l2, epochs } => {
                vec!["LR".into(), format!("l2={l2}"), format!("epochs={epochs}")]
            }
            Algo::KMeans { k } => vec!["KMeans".into(), format!("k={k}")],
            Algo::Word2Vec { dim, epochs } => {
                vec!["Word2Vec".into(), format!("dim={dim}"), format!("epochs={epochs}")]
            }
            Algo::NaiveBayes { alpha } => vec!["NB".into(), format!("alpha={alpha}")],
            Algo::RandomFourier { dim_out, gamma } => {
                vec!["RFF".into(), format!("dim_out={dim_out}"), format!("gamma={gamma}")]
            }
        }
    }

    /// Whether the algorithm is non-deterministic across executions.
    pub fn is_volatile(&self) -> bool {
        matches!(self, Algo::RandomFourier { .. })
    }

    /// Whether the algorithm consumes the session seed (SGD example
    /// shuffling, centroid init, embedding init, projection draw) — the
    /// declaration the tracker uses to fold the seed into the model
    /// node's signature. Naive Bayes is a closed-form count model: no
    /// seed, so its artifacts stay shareable across seeds.
    pub fn is_seeded(&self) -> bool {
        !matches!(self, Algo::NaiveBayes { .. })
    }
}

/// The learning operator: data in, model out.
pub struct Learner {
    /// Algorithm + hyperparameters.
    pub algo: Algo,
}

impl Operator for Learner {
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        let [input] = inputs else {
            return Err(HelixError::exec("learner", "expects one input"));
        };
        let model = match &self.algo {
            Algo::LogisticRegression { l2, epochs } => {
                let batch = input.as_collection()?.as_examples()?;
                let dim = example_dim(batch);
                let trainer = LogisticRegression {
                    l2: *l2,
                    epochs: *epochs,
                    seed: ctx.seed(),
                    ..Default::default()
                };
                Model::Linear(trainer.fit(&batch.examples, dim)?)
            }
            Algo::KMeans { k } => {
                let batch = input.as_collection()?.as_examples()?;
                let points: Vec<helix_data::FeatureVector> =
                    batch.examples.iter().map(|e| e.features.clone()).collect();
                let trainer = KMeans { k: *k, seed: ctx.seed(), ..Default::default() };
                Model::Centroids(trainer.fit(&points)?)
            }
            Algo::Word2Vec { dim, epochs } => {
                let units = input.as_collection()?.as_units()?;
                let sentences: Vec<Vec<String>> = units
                    .units
                    .iter()
                    .filter_map(|u| match &u.features {
                        FeatureBundle::Tokens(ts) if !ts.is_empty() => Some(ts.clone()),
                        _ => None,
                    })
                    .collect();
                let trainer =
                    Word2Vec { dim: *dim, epochs: *epochs, seed: ctx.seed(), ..Default::default() };
                Model::Embeddings(trainer.fit(&sentences)?)
            }
            Algo::NaiveBayes { alpha } => {
                let batch = input.as_collection()?.as_examples()?;
                let dim = example_dim(batch);
                Model::NaiveBayes(NaiveBayes { alpha: *alpha }.fit(&batch.examples, dim)?)
            }
            Algo::RandomFourier { dim_out, gamma } => {
                let batch = input.as_collection()?.as_examples()?;
                let dim = example_dim(batch);
                let rff =
                    RandomFourierFeatures { dim_out: *dim_out, gamma: *gamma, seed: ctx.seed() };
                Model::Transform(rff.fit(dim)?)
            }
        };
        Ok(Value::Model(model))
    }

    fn byte_affecting_inputs(&self) -> ProvenanceInputs {
        if self.algo.is_seeded() {
            ProvenanceInputs::SEED
        } else {
            ProvenanceInputs::NONE
        }
    }
}

/// The inference operator: `(model, data) → inference results` (or
/// transformed features for DPR transforms).
///
/// For scoring models the output examples are *slim*: label, split, tag and
/// prediction only, with features dropped. This matches the paper's data
/// model — inference "infers feature values, i.e., labels" — and gives
/// inference outputs the small footprint that makes them cheap to
/// materialize (the MNIST discussion in §6.5.2 hinges on predictions being
/// far smaller than the DPR intermediates).
pub struct Predict;

/// Inference result without the input features.
fn slim(e: &Example, prediction: f64) -> Example {
    Example {
        features: helix_data::FeatureVector::Dense(Vec::new()),
        label: e.label,
        split: e.split,
        prediction: Some(prediction),
        tag: e.tag.clone(),
    }
}

impl Operator for Predict {
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        let [model, data] = inputs else {
            return Err(HelixError::exec("predict", "expects (model, data)"));
        };
        let batch = data.as_collection()?.as_examples()?;
        match model.as_model()? {
            Model::Linear(m) => {
                let examples: Vec<Example> = ctx.pool.map(&batch.examples, |e| {
                    let scores = LogisticRegression::scores(m, &e.features);
                    let p = if scores.len() == 1 {
                        scores[0]
                    } else {
                        helix_ml::linalg::argmax(&scores).unwrap_or(0) as f64
                    };
                    slim(e, p)
                });
                Ok(Value::examples(ExampleBatch::dense(examples)))
            }
            Model::Centroids(m) => {
                let examples: Vec<Example> = ctx
                    .pool
                    .map(&batch.examples, |e| slim(e, KMeans::assign(m, &e.features) as f64));
                Ok(Value::examples(ExampleBatch::dense(examples)))
            }
            Model::NaiveBayes(m) => {
                let examples: Vec<Example> =
                    ctx.pool.map(&batch.examples, |e| slim(e, NaiveBayes::predict(m, &e.features)));
                Ok(Value::examples(ExampleBatch::dense(examples)))
            }
            Model::Transform(t @ TransformModel::RandomFourier { .. }) => {
                let examples: Result<Vec<Example>> = ctx
                    .pool
                    .map(&batch.examples, |e| {
                        let transformed = RandomFourierFeatures::transform(t, &e.features)?;
                        let mut e = e.clone();
                        e.features = transformed;
                        Ok(e)
                    })
                    .into_iter()
                    .collect();
                // Transformed features live in an anonymous dense space.
                Ok(Value::examples(ExampleBatch::dense(examples?)))
            }
            Model::Transform(_) => {
                Err(HelixError::exec("predict", "transform model not applicable to examples here"))
            }
            Model::Embeddings(_) => Err(HelixError::exec(
                "predict",
                "embeddings are consumed by embed-entities, not predict",
            )),
        }
    }

    /// Example-local inference: partition the data input (input 1); the
    /// model input is passed whole to every partition.
    fn partitionable(&self) -> Option<PartitionSpec> {
        Some(PartitionSpec { partition_input: 1, min_rows: 1 })
    }
}

/// Feature dimensionality of a batch: the space when named, else the max
/// vector dimension (dense pipelines).
pub fn example_dim(batch: &ExampleBatch) -> usize {
    let space_dim = batch.space.dim();
    if space_dim > 0 {
        space_dim
    } else {
        batch.examples.iter().map(|e| e.features.dim()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_common::SplitMix64;
    use helix_data::{FeatureVector, Split};

    fn blob_examples(n: usize) -> ExampleBatch {
        let mut rng = SplitMix64::new(1);
        let examples = (0..n)
            .map(|i| {
                let label = (i % 2) as f64;
                let c = if label > 0.5 { 2.0 } else { -2.0 };
                Example::new(
                    FeatureVector::Dense(vec![
                        c + rng.next_gaussian() * 0.3,
                        c + rng.next_gaussian() * 0.3,
                    ]),
                    Some(label),
                    if i % 5 == 0 { Split::Test } else { Split::Train },
                )
            })
            .collect();
        ExampleBatch::dense(examples)
    }

    #[test]
    fn learner_lr_then_predict() {
        let batch = Arc::new(Value::examples(blob_examples(200)));
        let learner = Learner { algo: Algo::LogisticRegression { l2: 0.1, epochs: 10 } };
        let model = learner.execute(&[Arc::clone(&batch)], &ExecContext::serial(3)).unwrap();
        assert_eq!(model.as_model().unwrap().kind(), "linear");

        let out = Predict.execute(&[Arc::new(model), batch], &ExecContext::serial(3)).unwrap();
        let binding = out.as_collection().unwrap();
        let predicted = binding.as_examples().unwrap();
        let pairs: Vec<(f64, f64)> = predicted
            .examples
            .iter()
            .filter(|e| e.split == Split::Test)
            .map(|e| (e.label.unwrap(), e.prediction.unwrap()))
            .collect();
        assert!(helix_ml::metrics::accuracy(&pairs) > 0.9);
    }

    #[test]
    fn learner_kmeans_assigns_clusters() {
        let batch = Arc::new(Value::examples(blob_examples(100)));
        let model = Learner { algo: Algo::KMeans { k: 2 } }
            .execute(&[Arc::clone(&batch)], &ExecContext::serial(5))
            .unwrap();
        let out = Predict.execute(&[Arc::new(model), batch], &ExecContext::serial(5)).unwrap();
        let binding = out.as_collection().unwrap();
        let assigned = binding.as_examples().unwrap();
        let clusters: std::collections::HashSet<i64> =
            assigned.examples.iter().map(|e| e.prediction.unwrap() as i64).collect();
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn learner_rff_transforms_features() {
        let batch = Arc::new(Value::examples(blob_examples(20)));
        let model = Learner { algo: Algo::RandomFourier { dim_out: 16, gamma: 0.1 } }
            .execute(&[Arc::clone(&batch)], &ExecContext::serial(5))
            .unwrap();
        let out = Predict.execute(&[Arc::new(model), batch], &ExecContext::serial(5)).unwrap();
        let binding = out.as_collection().unwrap();
        let transformed = binding.as_examples().unwrap();
        assert_eq!(transformed.examples[0].features.dim(), 16);
        assert_eq!(transformed.examples[0].label, Some(0.0), "labels preserved");
    }

    #[test]
    fn rff_is_declared_volatile() {
        assert!(Algo::RandomFourier { dim_out: 8, gamma: 0.1 }.is_volatile());
        assert!(!Algo::LogisticRegression { l2: 0.1, epochs: 5 }.is_volatile());
    }

    #[test]
    fn seeded_algorithms_declare_seed_provenance() {
        for algo in [
            Algo::LogisticRegression { l2: 0.1, epochs: 5 },
            Algo::KMeans { k: 2 },
            Algo::Word2Vec { dim: 4, epochs: 1 },
            Algo::RandomFourier { dim_out: 8, gamma: 0.1 },
        ] {
            assert!(algo.is_seeded(), "{algo:?} draws on the seed");
            let learner = Learner { algo };
            assert_eq!(learner.byte_affecting_inputs(), ProvenanceInputs::SEED);
        }
        let nb = Learner { algo: Algo::NaiveBayes { alpha: 1.0 } };
        assert!(!nb.algo.is_seeded());
        assert_eq!(nb.byte_affecting_inputs(), ProvenanceInputs::NONE);
    }

    #[test]
    fn sig_params_distinguish_hyperparameters() {
        let a = Algo::LogisticRegression { l2: 0.1, epochs: 5 }.sig_params();
        let b = Algo::LogisticRegression { l2: 0.2, epochs: 5 }.sig_params();
        assert_ne!(a, b);
    }

    #[test]
    fn predict_rejects_embedding_models() {
        let model = Arc::new(Value::Model(Model::Embeddings(helix_data::EmbeddingModel {
            vocab: Default::default(),
            vectors: vec![],
            dim: 0,
        })));
        let batch = Arc::new(Value::examples(blob_examples(5)));
        assert!(Predict.execute(&[model, batch], &ExecContext::serial(0)).is_err());
    }
}
