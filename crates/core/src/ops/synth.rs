//! Synthesizer operators: join and example assembly (paper §3.2.2).

use crate::operator::{ExecContext, Operator};
use helix_common::{HelixError, Result};
use helix_data::{
    Example, ExampleBatch, FeatureBundle, FeatureSpace, FeatureVector, SemanticUnit, Split,
    UnitBatch, Value,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Join token units against a knowledge base (paper: the Genomics workflow
/// joins literature tokens "with a genomic knowledge base"; the IE workflow
/// joins candidate pairs with known spouses). Emits one *keyed* unit per
/// occurrence of a KB entity, carrying the surrounding token context.
pub struct KbJoin {
    /// Column of the KB record batch holding entity names.
    pub kb_column: String,
    /// Tokens of context kept on each side of the match.
    pub context_window: usize,
}

impl Operator for KbJoin {
    fn execute(&self, inputs: &[Arc<Value>], _ctx: &ExecContext) -> Result<Value> {
        let [units, kb] = inputs else {
            return Err(HelixError::exec("kb-join", "expects (units, kb) inputs"));
        };
        let units = units.as_collection()?.as_units()?;
        let kb = kb.as_collection()?.as_records()?;
        let idx = kb
            .schema
            .index_of(&self.kb_column)
            .ok_or_else(|| HelixError::not_found("kb column", self.kb_column.clone()))?;
        let entities: HashSet<&str> =
            kb.rows.iter().filter_map(|r| r.values[idx].as_text()).collect();

        let mut out = Vec::new();
        for unit in &units.units {
            let FeatureBundle::Tokens(tokens) = &unit.features else { continue };
            for (pos, token) in tokens.iter().enumerate() {
                if !entities.contains(token.as_str()) {
                    continue;
                }
                let lo = pos.saturating_sub(self.context_window);
                let hi = (pos + self.context_window + 1).min(tokens.len());
                out.push(SemanticUnit {
                    origin: unit.origin,
                    split: unit.split,
                    features: FeatureBundle::Tokens(tokens[lo..hi].to_vec()),
                    key: Some(token.clone()),
                });
            }
        }
        Ok(Value::units(UnitBatch::new(out)))
    }
}

/// The central synthesizer: assemble examples from a base collection plus
/// any number of extractor unit batches (paper: `rows has_extractors(...)`
/// + `income results_from rows with_labels target`).
///
/// This operator is HELIX's *loop fusion* point (paper §6.5.3): all
/// feature-name interning, categorical indexing, and label indexing happen
/// in a single pass over the data, instead of one pass per learned
/// transform.
///
/// Inputs: `[base, ext_1, …, ext_k]` and optionally a label extractor as
/// the *last* input when `labeled` is true. `owners[i]` records the DAG
/// node id of `ext_i` for feature provenance.
pub struct AssembleExamples {
    /// DAG node ids of the extractor inputs, aligned with `ext_names`.
    pub owners: Vec<u32>,
    /// Stable extractor names used to prefix feature names.
    pub ext_names: Vec<String>,
    /// Whether the last input is the label extractor.
    pub labeled: bool,
}

impl Operator for AssembleExamples {
    fn execute(&self, inputs: &[Arc<Value>], _ctx: &ExecContext) -> Result<Value> {
        if inputs.len() < 2 {
            return Err(HelixError::exec("assemble", "expects base + at least one extractor"));
        }
        let base_len = match inputs[0].as_collection()? {
            helix_data::DataCollection::Records(b) => b.len(),
            helix_data::DataCollection::Units(b) => b.len(),
            helix_data::DataCollection::Examples(b) => b.len(),
        };
        let extractor_inputs = &inputs[1..];
        let feature_count =
            if self.labeled { extractor_inputs.len() - 1 } else { extractor_inputs.len() };
        if feature_count == 0 {
            return Err(HelixError::exec("assemble", "no feature extractors"));
        }
        if self.owners.len() != feature_count || self.ext_names.len() != feature_count {
            return Err(HelixError::exec(
                "assemble",
                "owner/name metadata misaligned with extractor inputs",
            ));
        }

        // Index units by origin for each extractor.
        let mut by_origin: Vec<HashMap<u32, &SemanticUnit>> = Vec::with_capacity(feature_count);
        for input in &extractor_inputs[..feature_count] {
            let units = input.as_collection()?.as_units()?;
            let mut map = HashMap::with_capacity(units.len());
            for u in &units.units {
                map.insert(u.origin, u);
            }
            by_origin.push(map);
        }
        let labels: Option<HashMap<u32, &SemanticUnit>> = if self.labeled {
            let units = extractor_inputs[feature_count].as_collection()?.as_units()?;
            let mut map = HashMap::with_capacity(units.len());
            for u in &units.units {
                map.insert(u.origin, u);
            }
            Some(map)
        } else {
            None
        };

        // Single fused pass: intern features, index categorical labels,
        // and emit sparse vectors.
        type SparseRow = (Vec<(u32, f64)>, Option<f64>, Split, Option<String>);
        let mut space = FeatureSpace::new();
        let mut label_index: HashMap<String, f64> = HashMap::new();
        let mut sparse_rows: Vec<SparseRow> = Vec::with_capacity(base_len);

        for origin in 0..base_len as u32 {
            let mut pairs: Vec<(u32, f64)> = Vec::new();
            let mut split = None;
            let mut tag = None;
            for (slot, units) in by_origin.iter().enumerate() {
                let Some(unit) = units.get(&origin) else { continue };
                split.get_or_insert(unit.split);
                if tag.is_none() {
                    tag = unit.key.clone();
                }
                let owner = self.owners[slot];
                let prefix = &self.ext_names[slot];
                match &unit.features {
                    FeatureBundle::Categorical(kv) => {
                        for (k, v) in kv {
                            let dim = space.intern(&format!("{prefix}:{k}={v}"), owner);
                            pairs.push((dim, 1.0));
                        }
                    }
                    FeatureBundle::Numeric(kv) => {
                        for (k, v) in kv {
                            let dim = space.intern(&format!("{prefix}:{k}"), owner);
                            pairs.push((dim, *v));
                        }
                    }
                    FeatureBundle::Vector(vec) => {
                        let dense = vec.to_dense();
                        for (j, x) in dense.iter().enumerate() {
                            if *x != 0.0 {
                                let dim = space.intern(&format!("{prefix}[{j}]"), owner);
                                pairs.push((dim, *x));
                            }
                        }
                    }
                    FeatureBundle::Tokens(tokens) => {
                        for token in tokens {
                            let dim = space.intern(&format!("{prefix}:tok={token}"), owner);
                            pairs.push((dim, 1.0));
                        }
                    }
                    FeatureBundle::Empty => {}
                }
            }
            let label = match &labels {
                None => None,
                Some(map) => map.get(&origin).and_then(|u| match &u.features {
                    FeatureBundle::Numeric(kv) => kv.first().map(|(_, v)| *v),
                    FeatureBundle::Categorical(kv) => kv.first().map(|(_, v)| {
                        let next = label_index.len() as f64;
                        *label_index.entry(v.clone()).or_insert(next)
                    }),
                    _ => None,
                }),
            };
            let split = split.unwrap_or(Split::Train);
            sparse_rows.push((pairs, label, split, tag));
        }

        let dim = space.dim() as u32;
        let space = Arc::new(space);
        let examples: Vec<Example> = sparse_rows
            .into_iter()
            .map(|(pairs, label, split, tag)| {
                let mut e =
                    Example::new(FeatureVector::sparse_from_pairs(dim, pairs), label, split);
                e.tag = tag;
                e
            })
            .collect();
        Ok(Value::examples(ExampleBatch::new(space, examples)))
    }
}

/// Turn keyed token units plus a learned embedding model into one example
/// per distinct entity (the Genomics workflow's bridge from word2vec to
/// k-means: "cluster the vector representation of genes").
pub struct EmbedEntities;

impl Operator for EmbedEntities {
    fn execute(&self, inputs: &[Arc<Value>], _ctx: &ExecContext) -> Result<Value> {
        let [model, units] = inputs else {
            return Err(HelixError::exec("embed-entities", "expects (model, units)"));
        };
        let helix_data::Model::Embeddings(embeddings) = model.as_model()? else {
            return Err(HelixError::exec("embed-entities", "expects an embedding model"));
        };
        let units = units.as_collection()?.as_units()?;
        let mut seen: HashSet<&str> = HashSet::new();
        let mut examples = Vec::new();
        for unit in &units.units {
            let Some(key) = unit.key.as_deref() else { continue };
            if !seen.insert(key) {
                continue;
            }
            let Some(vector) = embeddings.embedding(key) else { continue };
            examples.push(
                Example::new(FeatureVector::Dense(vector.to_vec()), None, Split::Train)
                    .with_tag(key),
            );
        }
        if examples.is_empty() {
            return Err(HelixError::exec("embed-entities", "no entities with embeddings"));
        }
        Ok(Value::examples(ExampleBatch::dense(examples)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::{EmbeddingModel, FieldValue, Model, Record, RecordBatch, Schema};

    fn unit(origin: u32, features: FeatureBundle) -> SemanticUnit {
        SemanticUnit { origin, split: Split::Train, features, key: None }
    }

    #[test]
    fn assemble_merges_extractors_with_provenance() {
        let base = Arc::new(Value::records(
            RecordBatch::new(
                Schema::new(["id"]),
                vec![
                    Record::train(vec![FieldValue::Int(0)]),
                    Record::test(vec![FieldValue::Int(1)]),
                ],
            )
            .unwrap(),
        ));
        let edu = Arc::new(Value::units(UnitBatch::new(vec![
            unit(0, FeatureBundle::Categorical(vec![("edu".into(), "BS".into())])),
            SemanticUnit {
                origin: 1,
                split: Split::Test,
                features: FeatureBundle::Categorical(vec![("edu".into(), "PhD".into())]),
                key: None,
            },
        ])));
        let age = Arc::new(Value::units(UnitBatch::new(vec![
            unit(0, FeatureBundle::Numeric(vec![("age".into(), 25.0)])),
            SemanticUnit {
                origin: 1,
                split: Split::Test,
                features: FeatureBundle::Numeric(vec![("age".into(), 45.0)]),
                key: None,
            },
        ])));
        let label = Arc::new(Value::units(UnitBatch::new(vec![
            unit(0, FeatureBundle::Numeric(vec![("target".into(), 1.0)])),
            SemanticUnit {
                origin: 1,
                split: Split::Test,
                features: FeatureBundle::Numeric(vec![("target".into(), 0.0)]),
                key: None,
            },
        ])));
        let op = AssembleExamples {
            owners: vec![10, 11],
            ext_names: vec!["eduExt".into(), "ageExt".into()],
            labeled: true,
        };
        let out = op.execute(&[base, edu, age, label], &ExecContext::serial(0)).unwrap();
        let binding = out.as_collection().unwrap();
        let batch = binding.as_examples().unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.examples[0].label, Some(1.0));
        assert_eq!(batch.examples[1].split, Split::Test);
        // Provenance: the edu feature dims belong to owner 10.
        let edu_dims = batch.space.dims_of_owner(10);
        assert_eq!(edu_dims.len(), 2, "BS and PhD dims");
        assert!(batch.space.name(edu_dims[0]).unwrap().starts_with("eduExt:"));
        // Numeric feature keeps its value.
        let age_dim = batch.space.index_of("ageExt:age").unwrap();
        assert_eq!(batch.examples[1].features.get(age_dim as usize), 45.0);
    }

    #[test]
    fn assemble_categorical_labels_are_indexed() {
        let base = Arc::new(Value::records(
            RecordBatch::new(
                Schema::new(["id"]),
                vec![
                    Record::train(vec![FieldValue::Int(0)]),
                    Record::train(vec![FieldValue::Int(1)]),
                    Record::train(vec![FieldValue::Int(2)]),
                ],
            )
            .unwrap(),
        ));
        let feat = Arc::new(Value::units(UnitBatch::new(vec![
            unit(0, FeatureBundle::Numeric(vec![("x".into(), 1.0)])),
            unit(1, FeatureBundle::Numeric(vec![("x".into(), 2.0)])),
            unit(2, FeatureBundle::Numeric(vec![("x".into(), 3.0)])),
        ])));
        let label = Arc::new(Value::units(UnitBatch::new(vec![
            unit(0, FeatureBundle::Categorical(vec![("y".into(), ">50K".into())])),
            unit(1, FeatureBundle::Categorical(vec![("y".into(), "<=50K".into())])),
            unit(2, FeatureBundle::Categorical(vec![("y".into(), ">50K".into())])),
        ])));
        let op = AssembleExamples { owners: vec![1], ext_names: vec!["x".into()], labeled: true };
        let out = op.execute(&[base, feat, label], &ExecContext::serial(0)).unwrap();
        let binding = out.as_collection().unwrap();
        let batch = binding.as_examples().unwrap();
        assert_eq!(batch.examples[0].label, Some(0.0));
        assert_eq!(batch.examples[1].label, Some(1.0));
        assert_eq!(batch.examples[2].label, Some(0.0), "repeat category reuses index");
    }

    #[test]
    fn assemble_missing_units_leave_gaps() {
        // Extractor only produced a unit for origin 0; origin 1 gets no
        // features but still yields an example.
        let base = Arc::new(Value::records(
            RecordBatch::new(
                Schema::new(["id"]),
                vec![
                    Record::train(vec![FieldValue::Int(0)]),
                    Record::train(vec![FieldValue::Int(1)]),
                ],
            )
            .unwrap(),
        ));
        let feat = Arc::new(Value::units(UnitBatch::new(vec![unit(
            0,
            FeatureBundle::Numeric(vec![("x".into(), 5.0)]),
        )])));
        let op = AssembleExamples { owners: vec![1], ext_names: vec!["x".into()], labeled: false };
        let out = op.execute(&[base, feat], &ExecContext::serial(0)).unwrap();
        let binding = out.as_collection().unwrap();
        let batch = binding.as_examples().unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.examples[1].features.nnz(), 0);
    }

    #[test]
    fn assemble_validates_metadata() {
        let base = Arc::new(Value::records(RecordBatch::empty(Schema::new(["id"]))));
        let feat = Arc::new(Value::units(UnitBatch::default()));
        let bad = AssembleExamples { owners: vec![], ext_names: vec![], labeled: false };
        assert!(bad.execute(&[base.clone(), feat.clone()], &ExecContext::serial(0)).is_err());
        let bad2 =
            AssembleExamples { owners: vec![1, 2], ext_names: vec!["a".into()], labeled: false };
        assert!(bad2.execute(&[base, feat], &ExecContext::serial(0)).is_err());
    }

    #[test]
    fn kb_join_emits_keyed_context() {
        let units = Arc::new(Value::units(UnitBatch::new(vec![unit(
            0,
            FeatureBundle::Tokens(
                ["the", "brca1", "gene", "causes", "cancer"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            ),
        )])));
        let kb = Arc::new(Value::records(
            RecordBatch::new(
                Schema::new(["gene"]),
                vec![
                    Record::train(vec![FieldValue::Text("brca1".into())]),
                    Record::train(vec![FieldValue::Text("tp53".into())]),
                ],
            )
            .unwrap(),
        ));
        let op = KbJoin { kb_column: "gene".into(), context_window: 1 };
        let out = op.execute(&[units, kb], &ExecContext::serial(0)).unwrap();
        let binding = out.as_collection().unwrap();
        let joined = binding.as_units().unwrap();
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.units[0].key.as_deref(), Some("brca1"));
        match &joined.units[0].features {
            FeatureBundle::Tokens(ts) => assert_eq!(ts, &vec!["the", "brca1", "gene"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn embed_entities_one_example_per_entity() {
        let model = Arc::new(Value::Model(Model::Embeddings(EmbeddingModel {
            vocab: [("brca1".to_string(), 0u32)].into_iter().collect(),
            vectors: vec![0.5, -0.5],
            dim: 2,
        })));
        let units = Arc::new(Value::units(UnitBatch::new(vec![
            SemanticUnit {
                origin: 0,
                split: Split::Train,
                features: FeatureBundle::Empty,
                key: Some("brca1".into()),
            },
            SemanticUnit {
                origin: 1,
                split: Split::Train,
                features: FeatureBundle::Empty,
                key: Some("brca1".into()),
            },
            SemanticUnit {
                origin: 2,
                split: Split::Train,
                features: FeatureBundle::Empty,
                key: Some("unknown_gene".into()),
            },
        ])));
        let out = EmbedEntities.execute(&[model, units], &ExecContext::serial(0)).unwrap();
        let binding = out.as_collection().unwrap();
        let batch = binding.as_examples().unwrap();
        assert_eq!(batch.len(), 1, "dedup + OOV skip");
        assert_eq!(batch.examples[0].tag.as_deref(), Some("brca1"));
        assert_eq!(batch.examples[0].features.to_dense(), vec![0.5, -0.5]);
    }
}
