//! The operator abstraction behind every Workflow DAG node.
//!
//! A node is "the output of `f_i`" (paper Definition 1); [`NodeSpec`]
//! bundles the executable `f_i` with everything the compiler and tracker
//! need to know about it: its declaration signature (for representational
//! equivalence, §4.2), its workflow phase (for the Figure 6 breakdown), and
//! whether it is volatile (non-deterministic, like the MNIST random
//! Fourier projection).

use helix_common::hash::Signature;
use helix_common::Result;
use helix_common::SplitMix64;
use helix_data::Value;
use helix_exec::{Phase, WorkerPool};
use std::sync::Arc;

/// Runtime context handed to operators.
pub struct ExecContext {
    /// Data-parallel worker pool (paper: Spark executors).
    pub pool: WorkerPool,
    /// Deterministic per-node seed (session seed ⊕ node signature).
    seed: u64,
    /// Whether the operator read the seed (via [`seed`](Self::seed) or
    /// [`rng`](Self::rng)). The engine checks this against the
    /// operator's [`Operator::byte_affecting_inputs`] declaration after
    /// every execution: an operator that consumes the seed without
    /// declaring it would be keyed seed-independently and silently
    /// poison cross-tenant reuse, so that is a hard error. Shared
    /// across partition contexts so a streamed execution reports seed
    /// usage exactly like the whole-frame run would.
    seed_read: Arc<std::sync::atomic::AtomicBool>,
    /// Global row index of the first row of the slice this context
    /// executes over. 0 for whole-frame execution; partition-streamed
    /// execution sets it to the partition's start offset so per-row
    /// provenance (`SemanticUnit::origin`) stays globally indexed and
    /// byte-identical to the whole-frame run.
    base_origin: u32,
}

impl ExecContext {
    /// A context over `pool` with a resolved per-node seed.
    pub fn new(pool: WorkerPool, seed: u64) -> ExecContext {
        ExecContext {
            pool,
            seed,
            seed_read: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            base_origin: 0,
        }
    }

    /// A serial context for tests.
    pub fn serial(seed: u64) -> ExecContext {
        Self::new(WorkerPool::serial(), seed)
    }

    /// A context for executing one partition of a streamed node: same
    /// seed, shared seed-read flag, row-serial pool (the streaming
    /// dispatcher's lanes are the parallelism), and a global base row
    /// offset for provenance stamping.
    pub fn partition(&self, base_origin: u32) -> ExecContext {
        ExecContext {
            pool: WorkerPool::serial(),
            seed: self.seed,
            seed_read: Arc::clone(&self.seed_read),
            base_origin,
        }
    }

    /// Global row index of this context's first input row (see field doc).
    pub fn base_origin(&self) -> u32 {
        self.base_origin
    }

    /// The deterministic per-node seed. Reading it marks the execution
    /// seed-dependent; the operator must declare
    /// [`ProvenanceInputs::SEED`] (see [`SeededOperator`] for closures).
    pub fn seed(&self) -> u64 {
        self.seed_read.store(true, std::sync::atomic::Ordering::Relaxed);
        self.seed
    }

    /// A fresh deterministic RNG for this execution (marks the execution
    /// seed-dependent, like [`seed`](Self::seed)).
    pub fn rng(&self) -> SplitMix64 {
        SplitMix64::new(self.seed())
    }

    /// Whether [`seed`](Self::seed)/[`rng`](Self::rng) were consulted.
    pub fn seed_was_read(&self) -> bool {
        self.seed_read.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Which execution-environment inputs can change an operator's *output
/// bytes*. The tracker folds exactly these into the operator's chain
/// signature (see `helix_core::track`), so artifacts are keyed by full
/// provenance: a stochastic operator run under two different seeds gets
/// two different signatures, while a deterministic operator keeps one
/// signature across environments and stays shareable.
///
/// Deliberately *excluded* from this set is everything that cannot
/// change bytes: worker counts, core budgets, storage budgets, cache
/// policy, materialization hysteresis — the engine's determinism
/// contract guarantees those only move time, never results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ProvenanceInputs(u8);

impl ProvenanceInputs {
    /// Output bytes are a pure function of the inputs: nothing from the
    /// environment needs to be folded into the signature.
    pub const NONE: ProvenanceInputs = ProvenanceInputs(0);
    /// Output bytes depend on the session seed ([`ExecContext::seed`] /
    /// [`ExecContext::rng`]).
    pub const SEED: ProvenanceInputs = ProvenanceInputs(1);

    /// Whether every input named by `other` is also named by `self`.
    pub fn contains(self, other: ProvenanceInputs) -> bool {
        self.0 & other.0 == other.0
    }

    /// The union of two input sets.
    #[must_use]
    pub fn union(self, other: ProvenanceInputs) -> ProvenanceInputs {
        ProvenanceInputs(self.0 | other.0)
    }

    /// Whether no environment input affects the output.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// Batchability capability of an operator: how its execution can be
/// split into independent fixed-boundary partitions of one collection
/// input. An operator advertising `PartitionSpec` promises that for any
/// contiguous split of the partition input into row ranges, executing
/// each range (with [`ExecContext::base_origin`] set to the range start)
/// and concatenating the outputs in range order is byte-identical to one
/// whole-frame execution. That makes batching a pure execution detail —
/// like worker count — and lets the engine stream partitions through
/// overlapped load/compute/commit lanes without touching signatures,
/// plans, or materialization decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Index of the input to partition by row range. All other inputs
    /// are passed whole to every partition.
    pub partition_input: usize,
    /// Minimum rows for streaming to be worthwhile; below this the
    /// engine runs whole-frame.
    pub min_rows: usize,
}

impl PartitionSpec {
    /// Partition by row ranges of input `partition_input`.
    pub fn on_input(partition_input: usize) -> PartitionSpec {
        PartitionSpec { partition_input, min_rows: 1 }
    }
}

/// An executable workflow operator.
///
/// Operators are pure functions of their inputs plus the environment
/// inputs they *declare* via
/// [`byte_affecting_inputs`](Operator::byte_affecting_inputs); *declared*
/// volatility (see
/// [`NodeSpec::volatile`]) is how true non-determinism enters the model —
/// the session feeds a fresh nonce into the seed of a volatile operator
/// each time it actually re-executes.
pub trait Operator: Send + Sync {
    /// Compute the node's output from resolved input values.
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value>;

    /// Which execution-environment inputs can change this operator's
    /// output bytes. The default — [`ProvenanceInputs::NONE`] — declares
    /// the operator deterministic with respect to the environment: it
    /// must not consume [`ExecContext::seed`] or [`ExecContext::rng`].
    /// Operators that do (stochastic learners, seeded samplers) must
    /// override this so the tracker keys their artifacts by seed; wrap
    /// closures in [`SeededOperator`] to get the declaration for free.
    fn byte_affecting_inputs(&self) -> ProvenanceInputs {
        ProvenanceInputs::NONE
    }

    /// Whether this operator can execute as independent row-range
    /// partitions of one input (see [`PartitionSpec`]). The default —
    /// `None` — keeps whole-frame execution; row-local operators
    /// (per-row parses, per-row feature extraction, per-example
    /// prediction) override this to opt into micro-batch streaming.
    /// Operators with cross-row state (global fits like quantile
    /// bucketizers or learners, multi-input row alignment) must not.
    fn partitionable(&self) -> Option<PartitionSpec> {
        None
    }
}

/// Blanket operator for plain closures. Closures get the default
/// [`ProvenanceInputs::NONE`] declaration — a closure UDF that draws on
/// the context seed or RNG must be wrapped in [`SeededOperator`] instead,
/// or tenants with different seeds would silently share its artifacts.
impl<F> Operator for F
where
    F: Fn(&[Arc<Value>], &ExecContext) -> Result<Value> + Send + Sync,
{
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        self(inputs, ctx)
    }
}

/// Wrapper declaring a closure operator seed-dependent: the tracker
/// folds the session seed into the node's signature, so artifacts from
/// different seeds never collide in a shared catalog.
pub struct SeededOperator<F>(pub F);

impl<F> Operator for SeededOperator<F>
where
    F: Fn(&[Arc<Value>], &ExecContext) -> Result<Value> + Send + Sync,
{
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        (self.0)(inputs, ctx)
    }

    fn byte_affecting_inputs(&self) -> ProvenanceInputs {
        ProvenanceInputs::SEED
    }
}

/// Everything the compiler knows about one DAG node.
pub struct NodeSpec {
    /// Unique, stable operator name (identity for cross-iteration state
    /// such as volatile nonces; reuse identity is the *signature*).
    pub name: String,
    /// Workflow component for run-time breakdowns.
    pub phase: Phase,
    /// Signature of the operator *declaration*: type + parameters + UDF
    /// version token. Parent linkage is chained in by the tracker.
    pub decl_sig: Signature,
    /// Declared non-determinism: re-execution yields different results.
    pub volatile: bool,
    /// Marked `is_output()` in the DSL.
    pub is_output: bool,
    /// The executable.
    pub operator: Arc<dyn Operator>,
}

impl std::fmt::Debug for NodeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeSpec")
            .field("name", &self.name)
            .field("phase", &self.phase)
            .field("decl_sig", &self.decl_sig)
            .field("volatile", &self.volatile)
            .field("is_output", &self.is_output)
            .finish_non_exhaustive()
    }
}

/// Helper to build declaration signatures: hash the operator type name and
/// an ordered list of parameter renderings.
pub fn decl_signature(op_type: &str, params: &[&str]) -> Signature {
    let mut sig = Signature::of_str(op_type);
    for p in params {
        sig = sig.chain(Signature::of_str(p));
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::Scalar;

    #[test]
    fn closure_operators_execute() {
        let op = |_inputs: &[Arc<Value>], ctx: &ExecContext| {
            Ok(Value::Scalar(Scalar::I64(ctx.seed() as i64)))
        };
        let out = op.execute(&[], &ExecContext::serial(7)).unwrap();
        assert_eq!(out.as_scalar().unwrap().as_f64(), Some(7.0));
    }

    #[test]
    fn decl_signature_orders_params() {
        let a = decl_signature("Learner", &["LR", "reg=0.1"]);
        let b = decl_signature("Learner", &["LR", "reg=0.2"]);
        let c = decl_signature("Learner", &["reg=0.1", "LR"]);
        assert_ne!(a, b, "parameter change must change the signature");
        assert_ne!(a, c, "parameter order is significant");
        assert_eq!(a, decl_signature("Learner", &["LR", "reg=0.1"]));
    }

    #[test]
    fn context_rng_is_seed_deterministic() {
        let a = ExecContext::serial(5).rng().next_u64();
        let b = ExecContext::serial(5).rng().next_u64();
        let c = ExecContext::serial(6).rng().next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn partition_contexts_share_seed_state_and_carry_offsets() {
        let ctx = ExecContext::serial(11);
        let part = ctx.partition(40);
        assert_eq!(part.base_origin(), 40);
        assert_eq!(ctx.base_origin(), 0);
        assert!(!ctx.seed_was_read());
        assert_eq!(part.seed(), 11);
        assert!(ctx.seed_was_read(), "partition seed reads surface on the node context");
    }

    #[test]
    fn operators_default_to_whole_frame() {
        let plain = |_inputs: &[Arc<Value>], _ctx: &ExecContext| Ok(Value::Scalar(Scalar::I64(1)));
        assert_eq!(Operator::partitionable(&plain), None);
        assert_eq!(PartitionSpec::on_input(1), PartitionSpec { partition_input: 1, min_rows: 1 });
    }

    #[test]
    fn provenance_inputs_algebra() {
        assert!(ProvenanceInputs::NONE.is_empty());
        assert!(!ProvenanceInputs::SEED.is_empty());
        assert!(ProvenanceInputs::SEED.contains(ProvenanceInputs::NONE));
        assert!(ProvenanceInputs::SEED.contains(ProvenanceInputs::SEED));
        assert!(!ProvenanceInputs::NONE.contains(ProvenanceInputs::SEED));
        assert_eq!(ProvenanceInputs::NONE.union(ProvenanceInputs::SEED), ProvenanceInputs::SEED);
    }

    #[test]
    fn closures_default_to_no_provenance_and_seeded_wrapper_declares_seed() {
        let plain = |_inputs: &[Arc<Value>], _ctx: &ExecContext| Ok(Value::Scalar(Scalar::I64(1)));
        assert_eq!(Operator::byte_affecting_inputs(&plain), ProvenanceInputs::NONE);
        let seeded = SeededOperator(|_inputs: &[Arc<Value>], ctx: &ExecContext| {
            Ok(Value::Scalar(Scalar::I64(ctx.seed() as i64)))
        });
        assert_eq!(seeded.byte_affecting_inputs(), ProvenanceInputs::SEED);
        let out = seeded.execute(&[], &ExecContext::serial(9)).unwrap();
        assert_eq!(out.as_scalar().unwrap().as_f64(), Some(9.0));
    }
}
