//! The operator abstraction behind every Workflow DAG node.
//!
//! A node is "the output of `f_i`" (paper Definition 1); [`NodeSpec`]
//! bundles the executable `f_i` with everything the compiler and tracker
//! need to know about it: its declaration signature (for representational
//! equivalence, §4.2), its workflow phase (for the Figure 6 breakdown), and
//! whether it is volatile (non-deterministic, like the MNIST random
//! Fourier projection).

use helix_common::hash::Signature;
use helix_common::Result;
use helix_common::SplitMix64;
use helix_data::Value;
use helix_exec::{Phase, WorkerPool};
use std::sync::Arc;

/// Runtime context handed to operators.
pub struct ExecContext {
    /// Data-parallel worker pool (paper: Spark executors).
    pub pool: WorkerPool,
    /// Deterministic per-node seed (session seed ⊕ node signature).
    pub seed: u64,
}

impl ExecContext {
    /// A serial context for tests.
    pub fn serial(seed: u64) -> ExecContext {
        ExecContext { pool: WorkerPool::serial(), seed }
    }

    /// A fresh deterministic RNG for this execution.
    pub fn rng(&self) -> SplitMix64 {
        SplitMix64::new(self.seed)
    }
}

/// An executable workflow operator.
///
/// Operators are pure functions of their inputs plus the context seed;
/// *declared* volatility (see [`NodeSpec::volatile`]) is how
/// non-determinism enters the model — the session feeds a fresh nonce into
/// the seed of a volatile operator each time it actually re-executes.
pub trait Operator: Send + Sync {
    /// Compute the node's output from resolved input values.
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value>;
}

/// Blanket operator for plain closures.
impl<F> Operator for F
where
    F: Fn(&[Arc<Value>], &ExecContext) -> Result<Value> + Send + Sync,
{
    fn execute(&self, inputs: &[Arc<Value>], ctx: &ExecContext) -> Result<Value> {
        self(inputs, ctx)
    }
}

/// Everything the compiler knows about one DAG node.
pub struct NodeSpec {
    /// Unique, stable operator name (identity for cross-iteration state
    /// such as volatile nonces; reuse identity is the *signature*).
    pub name: String,
    /// Workflow component for run-time breakdowns.
    pub phase: Phase,
    /// Signature of the operator *declaration*: type + parameters + UDF
    /// version token. Parent linkage is chained in by the tracker.
    pub decl_sig: Signature,
    /// Declared non-determinism: re-execution yields different results.
    pub volatile: bool,
    /// Marked `is_output()` in the DSL.
    pub is_output: bool,
    /// The executable.
    pub operator: Arc<dyn Operator>,
}

impl std::fmt::Debug for NodeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeSpec")
            .field("name", &self.name)
            .field("phase", &self.phase)
            .field("decl_sig", &self.decl_sig)
            .field("volatile", &self.volatile)
            .field("is_output", &self.is_output)
            .finish_non_exhaustive()
    }
}

/// Helper to build declaration signatures: hash the operator type name and
/// an ordered list of parameter renderings.
pub fn decl_signature(op_type: &str, params: &[&str]) -> Signature {
    let mut sig = Signature::of_str(op_type);
    for p in params {
        sig = sig.chain(Signature::of_str(p));
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::Scalar;

    #[test]
    fn closure_operators_execute() {
        let op = |_inputs: &[Arc<Value>], ctx: &ExecContext| {
            Ok(Value::Scalar(Scalar::I64(ctx.seed as i64)))
        };
        let out = op.execute(&[], &ExecContext::serial(7)).unwrap();
        assert_eq!(out.as_scalar().unwrap().as_f64(), Some(7.0));
    }

    #[test]
    fn decl_signature_orders_params() {
        let a = decl_signature("Learner", &["LR", "reg=0.1"]);
        let b = decl_signature("Learner", &["LR", "reg=0.2"]);
        let c = decl_signature("Learner", &["reg=0.1", "LR"]);
        assert_ne!(a, b, "parameter change must change the signature");
        assert_ne!(a, c, "parameter order is significant");
        assert_eq!(a, decl_signature("Learner", &["LR", "reg=0.1"]));
    }

    #[test]
    fn context_rng_is_seed_deterministic() {
        let a = ExecContext::serial(5).rng().next_u64();
        let b = ExecContext::serial(5).rng().next_u64();
        let c = ExecContext::serial(6).rng().next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
