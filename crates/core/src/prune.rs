//! Data-driven pruning (paper §5.4).
//!
//! HELIX "performs additional provenance bookkeeping to track the
//! operators that led to each feature in the model … Operators resulting
//! in features with zero weights can be pruned without changing the
//! prediction outcome." Our `FeatureSpace` records the producing operator
//! of every dimension; this module inspects a trained linear model and
//! reports extractors whose *entire* feature block is (near-)zero.

use helix_data::{FeatureSpace, LinearModel};

/// Operators all of whose features have `|weight| < threshold` in every
/// class head — candidates for pruning from the next iteration's workflow.
///
/// Returns the owner node ids recorded in the feature space, in ascending
/// order. Owners with *no* features in the space are not reported (nothing
/// to conclude about them).
pub fn zero_weight_owners(model: &LinearModel, space: &FeatureSpace, threshold: f64) -> Vec<u32> {
    let dim = model.dim as usize;
    let mut owners: Vec<u32> = (0..space.dim() as u32).filter_map(|d| space.owner(d)).collect();
    owners.sort_unstable();
    owners.dedup();
    owners
        .into_iter()
        .filter(|&owner| {
            let dims = space.dims_of_owner(owner);
            !dims.is_empty()
                && dims.iter().all(|&d| {
                    let d = d as usize;
                    d < dim
                        && model
                            .weights
                            .iter()
                            .all(|head| head.get(d).is_none_or(|w| w.abs() < threshold))
                })
        })
        .collect()
}

/// Total absolute weight attributed to each owner (diagnostics for the
/// pruning report).
pub fn owner_weight_mass(model: &LinearModel, space: &FeatureSpace) -> Vec<(u32, f64)> {
    let dim = model.dim as usize;
    let mut owners: Vec<u32> = (0..space.dim() as u32).filter_map(|d| space.owner(d)).collect();
    owners.sort_unstable();
    owners.dedup();
    owners
        .into_iter()
        .map(|owner| {
            let mass: f64 = space
                .dims_of_owner(owner)
                .iter()
                .filter(|&&d| (d as usize) < dim)
                .map(|&d| model.weights.iter().map(|head| head[d as usize].abs()).sum::<f64>())
                .sum();
            (owner, mass)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> FeatureSpace {
        let mut s = FeatureSpace::new();
        s.intern("useful:a", 1);
        s.intern("useful:b", 1);
        s.intern("dead:a", 2);
        s.intern("dead:b", 2);
        s.intern("mixed:a", 3);
        s.intern("mixed:b", 3);
        s
    }

    fn model(weights: Vec<f64>) -> LinearModel {
        let dim = weights.len() as u32;
        LinearModel { weights: vec![weights], bias: vec![0.0], dim }
    }

    #[test]
    fn identifies_fully_zero_owners() {
        let m = model(vec![0.8, -0.5, 1e-9, 0.0, 0.0, 0.7]);
        let dead = zero_weight_owners(&m, &space(), 1e-6);
        assert_eq!(dead, vec![2], "only the all-zero extractor is prunable");
    }

    #[test]
    fn multiclass_requires_zero_in_all_heads() {
        let s = space();
        let m = LinearModel {
            weights: vec![vec![0.0; 6], {
                let mut w = vec![0.0; 6];
                w[2] = 0.9; // owner 2 matters to class 1
                w
            }],
            bias: vec![0.0, 0.0],
            dim: 6,
        };
        let dead = zero_weight_owners(&m, &s, 1e-6);
        assert!(!dead.contains(&2));
        assert!(dead.contains(&1) && dead.contains(&3));
    }

    #[test]
    fn weight_mass_ranks_owners() {
        let m = model(vec![0.8, -0.5, 0.0, 0.0, 0.1, 0.1]);
        let mass = owner_weight_mass(&m, &space());
        let get = |o: u32| mass.iter().find(|(x, _)| *x == o).unwrap().1;
        assert!(get(1) > get(3));
        assert_eq!(get(2), 0.0);
    }

    #[test]
    fn empty_space_reports_nothing() {
        let m = model(vec![]);
        assert!(zero_weight_owners(&m, &FeatureSpace::new(), 1e-6).is_empty());
        assert!(owner_weight_mass(&m, &FeatureSpace::new()).is_empty());
    }
}
