//! The pipelined iteration runtime: the machinery that overlaps the
//! *iterate → reuse → iterate* loop the paper is about (ROADMAP
//! "pipeline across iterations"; plan-then-execute split à la the Helix
//! LLM-serving follow-up, arXiv:2406.01566; I/O hidden under compute as
//! in micro-batch co-execution, arXiv:2411.15871).
//!
//! Three lanes run beside the engine's compute frontier:
//!
//! * **Plan lane** ([`SpeculationInputs`] / [`speculate`]) — iteration
//!   `t+1`'s signature chain and OPT-EXEC-PLAN solve start on a
//!   budget-leased thread while `t`'s tail nodes still execute.
//!   Speculation is *read-only* and records the planner's exact read set
//!   ([`helix_core::plan::PlanReadSet`](crate::plan::PlanReadSet)); when
//!   `t+1` actually begins, the session revalidates every read against
//!   the now-final state and reuses the speculative plan only on a
//!   perfect match — otherwise it replans exactly as a serial session
//!   would. The plan *used* is therefore always byte-identical to the
//!   serial plan; speculation can only move work off the critical path,
//!   never change it.
//! * **Write lane** ([`BackgroundWriter`]) — elective materializations
//!   are *staged* in the catalog index synchronously (so every
//!   Algorithm-2 decision still sees serial-identical budget/catalog
//!   state, in the engine's deterministic finalize order) while the
//!   throttled file writes drain on a background thread, across iteration
//!   boundaries. The writer seals each drained batch with one manifest
//!   commit; the manifest never references a non-durable file, so a crash
//!   mid-write recovers to a consistent catalog.
//! * **Load lane** ([`Prefetcher`]) — every plan-time-claimed `Load` is
//!   fetched concurrently from iteration start instead of lazily when the
//!   frontier reaches it, hiding load I/O under compute even on chains
//!   where DAG order would serialize the reads. Loads report the disk
//!   model's deterministic cost to the statistics (identical to serial);
//!   the real, overlapped wall time is reported separately
//!   ([`helix_exec::IterationMetrics::load_nanos`]).
//!
//! Budget discipline: the plan lane leases a token or skips entirely;
//! the load lanes are *sized* by the budget at spawn time (the engine
//! leases one token per extra lane for the lanes' lifetime — decode is
//! real CPU, not just sleep — and always keeps one lane on the
//! iteration's own token); the single write-lane thread leases
//! opportunistically per write (`try_acquire_one`, held while working)
//! but proceeds regardless, since a throttled file write is
//! sleep-dominated. `peak_leased ≤ budget` continues to hold because
//! only non-blocking acquisition is used.

use crate::dsl::Workflow;
use crate::plan::{plan_from_read_set, plan_read_set, Plan, PlanInputs, PlanReadSet};
use crate::session::ReuseScope;
use crate::track::{chain_signatures, ExecEnv};
use helix_common::hash::Signature;
use helix_common::timing::Nanos;
use helix_common::HelixError;
use helix_data::Value;
use helix_exec::{CoreBudget, TaskQueue};
use helix_flow::NodeId;
use helix_storage::MaterializationCatalog;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------
// Write lane
// ---------------------------------------------------------------------

struct WriteJob {
    sig: Signature,
    frame: Arc<Vec<u8>>,
}

struct WriterShared {
    catalog: Arc<MaterializationCatalog>,
    core_budget: Option<Arc<CoreBudget>>,
    queue: TaskQueue<WriteJob>,
    state: Mutex<WriterState>,
    idle: Condvar,
}

#[derive(Default)]
struct WriterState {
    in_system: usize,
    first_error: Option<HelixError>,
}

/// The writer's drain thread, started on the first enqueue. Lazy so the
/// thousands of mostly-loading sessions a pooled service multiplexes
/// never pay a thread for a write lane they don't use (the
/// `runner_stress` thread bound counts on this).
enum LazyThread {
    NotStarted,
    Running(std::thread::JoinHandle<()>),
    Failed,
}

/// The background materialization writer: a session-lifetime thread that
/// lands staged catalog writes off the critical path (see module docs).
///
/// Staging ([`MaterializationCatalog::stage_owned`]) already made the
/// entry visible, loadable, and quota-charged; this lane only turns it
/// durable. Writes may drain *across* iteration boundaries — the next
/// iteration's planner and loads work fine against staged entries — and
/// the manifest is committed on every idle edge, never referencing an
/// un-landed file.
pub struct BackgroundWriter {
    shared: Arc<WriterShared>,
    handle: Mutex<LazyThread>,
}

impl BackgroundWriter {
    /// A writer for `catalog`. No thread is spawned until the first
    /// [`enqueue`](Self::enqueue).
    pub fn new(
        catalog: Arc<MaterializationCatalog>,
        core_budget: Option<Arc<CoreBudget>>,
    ) -> BackgroundWriter {
        let shared = Arc::new(WriterShared {
            catalog,
            core_budget,
            queue: TaskQueue::new(),
            state: Mutex::new(WriterState::default()),
            idle: Condvar::new(),
        });
        BackgroundWriter { shared, handle: Mutex::new(LazyThread::NotStarted) }
    }

    /// Start the drain thread if it isn't running; `false` means a
    /// previous spawn failed and writes must land inline.
    fn ensure_thread(&self) -> bool {
        let mut handle = self.handle.lock().expect("writer handle poisoned");
        match &*handle {
            LazyThread::Running(_) => true,
            LazyThread::Failed => false,
            LazyThread::NotStarted => {
                let shared = Arc::clone(&self.shared);
                match std::thread::Builder::new()
                    .name("helix-bg-writer".into())
                    .spawn(move || Self::drain_loop(&shared))
                {
                    Ok(h) => {
                        *handle = LazyThread::Running(h);
                        true
                    }
                    Err(_) => {
                        *handle = LazyThread::Failed;
                        false
                    }
                }
            }
        }
    }

    /// Deepest backlog `enqueue` accepts before it blocks the caller.
    /// Bounded so a producer outrunning the throttled disk cannot pile
    /// retained frames without limit — beyond this, staging degrades to
    /// the serial engine's natural inline-write backpressure.
    const MAX_BACKLOG: usize = 16;

    /// Hand a staged frame to the write lane, blocking while the backlog
    /// is at `MAX_BACKLOG`. (If the writer thread failed to spawn, the
    /// write is landed inline — slower, never lost.)
    pub fn enqueue(&self, sig: Signature, frame: Arc<Vec<u8>>) {
        if !self.ensure_thread() {
            let result = self.shared.catalog.complete_stage(sig, &frame);
            Self::record_error(&self.shared, result.err());
            return;
        }
        let mut state = self.shared.state.lock().expect("writer state poisoned");
        while state.in_system >= Self::MAX_BACKLOG {
            state = self.shared.idle.wait(state).expect("writer state poisoned");
        }
        state.in_system += 1;
        drop(state);
        self.shared.queue.push(WriteJob { sig, frame });
    }

    /// Block until every enqueued write has landed, then seal them with a
    /// manifest commit. Returns the first write error observed since the
    /// last sync (serial `store_owned` would have failed the iteration at
    /// that node; the background lane surfaces it at the next barrier).
    pub fn sync(&self) -> helix_common::Result<()> {
        let mut state = self.shared.state.lock().expect("writer state poisoned");
        while state.in_system > 0 {
            state = self.shared.idle.wait(state).expect("writer state poisoned");
        }
        let error = state.first_error.take();
        drop(state);
        let commit = self.shared.catalog.commit_staged();
        match (error, commit) {
            // The write error outranks (it names lost bytes); a commit
            // failure on top is re-recorded so the next sync sees it too.
            (Some(err), commit) => {
                Self::record_error(&self.shared, commit.err());
                Err(err)
            }
            (None, Err(err)) => Err(err),
            (None, Ok(())) => Ok(()),
        }
    }

    /// Writes currently staged but not yet landed.
    pub fn backlog(&self) -> usize {
        self.shared.state.lock().expect("writer state poisoned").in_system
    }

    /// Non-blocking: the first write error recorded since the last check,
    /// if any. Sessions poll this at iteration boundaries so a failed
    /// background write fails the *next* iteration loudly instead of
    /// vanishing.
    pub fn take_error(&self) -> Option<HelixError> {
        self.shared.state.lock().expect("writer state poisoned").first_error.take()
    }

    fn record_error(shared: &WriterShared, err: Option<HelixError>) {
        if let Some(err) = err {
            let mut state = shared.state.lock().expect("writer state poisoned");
            state.first_error.get_or_insert(err);
        }
    }

    fn drain_loop(shared: &WriterShared) {
        while let Some(job) = shared.queue.pop() {
            // Opportunistic token: accounts the lane while it works, but a
            // sleep-dominated throttled write never idles a durable token.
            let _lease = shared.core_budget.as_ref().and_then(|b| b.try_acquire_one());
            let drain_span =
                helix_obs::span(helix_obs::layer::PIPELINE, "writer.drain").track("writer");
            let result = shared.catalog.complete_stage(job.sig, &job.frame);
            drop(drain_span);
            Self::record_error(shared, result.err());
            let now_idle = {
                let mut state = shared.state.lock().expect("writer state poisoned");
                state.in_system -= 1;
                state.in_system == 0
            };
            // Every landed write wakes waiters: backpressured enqueues
            // re-check the backlog bound, sync() re-checks for idle.
            shared.idle.notify_all();
            if now_idle {
                // Idle edge: everything staged so far is durable — seal it.
                let _span =
                    helix_obs::span(helix_obs::layer::PIPELINE, "writer.commit").track("writer");
                let result = shared.catalog.commit_staged();
                Self::record_error(shared, result.err());
                shared.idle.notify_all();
            }
        }
    }
}

impl Drop for BackgroundWriter {
    fn drop(&mut self) {
        self.shared.queue.close();
        let handle = std::mem::replace(
            self.handle.get_mut().expect("writer handle poisoned"),
            LazyThread::Failed,
        );
        if let LazyThread::Running(handle) = handle {
            let _ = handle.join();
        }
        // Final seal for anything the loop landed right before close.
        let commit = self.shared.catalog.commit_staged();
        Self::record_error(&self.shared, commit.err());
        // Drop cannot return an error; a write failure nobody polled
        // (via `sync` or the next iteration) must not vanish silently.
        if let Some(err) = self.take_error() {
            eprintln!("helix: background materialization write lost at shutdown: {err}");
        }
    }
}

// ---------------------------------------------------------------------
// Load lane
// ---------------------------------------------------------------------

/// One prefetched load, ready for the node that planned it.
pub struct PrefetchedLoad {
    /// The decoded artifact.
    pub value: Value,
    /// Deterministic load cost (the disk model's target) — what the node
    /// reports as its run time, identical to a lazy serial load.
    pub load_nanos: Nanos,
    /// Whether the artifact was written by another tenant.
    pub cross: bool,
}

/// What [`Prefetcher::take`] hands the dispatching worker.
pub enum PrefetchTake {
    /// The load finished (or failed) in the prefetch lane.
    Ready(helix_common::Result<PrefetchedLoad>),
    /// The lane was halted before this load started — fall back to a
    /// direct catalog read (happens only on error-path iterations).
    Cancelled,
}

enum Slot {
    InFlight,
    Done(Option<helix_common::Result<PrefetchedLoad>>),
    Cancelled,
}

struct PrefetchState {
    cursor: usize,
    halted: bool,
    slots: HashMap<u32, Slot>,
}

/// Concurrent fetcher for every `Load` node of one iteration's plan.
///
/// Lanes claim jobs in topo order under one lock, so each load is fetched
/// exactly once; `take` blocks until its node's fetch lands. After
/// [`halt`](Self::halt) (first error observed, or driver shutdown) lanes
/// stop *starting* fetches; in-flight ones still complete, and takes of
/// never-started loads report [`PrefetchTake::Cancelled`] so the worker
/// loads directly — byte-identical either way.
pub struct Prefetcher<'a> {
    catalog: &'a MaterializationCatalog,
    tenant: &'a str,
    epoch: Instant,
    jobs: Vec<(NodeId, Signature)>,
    state: Mutex<PrefetchState>,
    ready: Condvar,
    halted_flag: AtomicBool,
    spans: Mutex<Vec<(Nanos, Nanos)>>,
    /// Trace-only ordinal handed to each `run_lane` entrant so every
    /// lane renders as its own track.
    lane_seq: AtomicU32,
}

impl<'a> Prefetcher<'a> {
    /// A prefetcher over `jobs` (the plan's `Load` nodes, topo order).
    /// Lane *accounting* is the spawner's job: the engine leases one
    /// core token per extra lane for the lanes' lifetime (loads decode
    /// real CPU, not just sleep), so `run_lane` itself leases nothing.
    pub fn new(
        catalog: &'a MaterializationCatalog,
        tenant: &'a str,
        epoch: Instant,
        jobs: Vec<(NodeId, Signature)>,
    ) -> Prefetcher<'a> {
        Prefetcher {
            catalog,
            tenant,
            epoch,
            jobs,
            state: Mutex::new(PrefetchState { cursor: 0, halted: false, slots: HashMap::new() }),
            ready: Condvar::new(),
            halted_flag: AtomicBool::new(false),
            spans: Mutex::new(Vec::new()),
            lane_seq: AtomicU32::new(0),
        }
    }

    /// Number of loads to fetch.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether there is nothing to fetch.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// How many I/O lanes are worth spawning for this plan.
    pub fn lanes(&self) -> usize {
        self.jobs.len().clamp(1, 4)
    }

    /// One lane: claim loads in topo order and fetch until drained or
    /// halted. Run from a scoped thread.
    pub fn run_lane(&self) {
        let lane = self.lane_seq.fetch_add(1, Ordering::Relaxed);
        loop {
            let (node, sig) = {
                let mut state = self.state.lock().expect("prefetch state poisoned");
                if state.halted {
                    return;
                }
                // Skip jobs another lane claimed or a take cancelled.
                while state.cursor < self.jobs.len()
                    && state.slots.contains_key(&self.jobs[state.cursor].0 .0)
                {
                    state.cursor += 1;
                }
                if state.cursor >= self.jobs.len() {
                    return;
                }
                let job = self.jobs[state.cursor];
                state.cursor += 1;
                state.slots.insert(job.0 .0, Slot::InFlight);
                job
            };
            let fetch_span = helix_obs::span(helix_obs::layer::PIPELINE, "prefetch")
                .track(format!("lane-{lane}"))
                .tenant(self.tenant)
                .lane(lane);
            let start = self.offset_nanos();
            let result = self
                .catalog
                .load_for(sig, self.tenant)
                .map(|(value, load_nanos, cross)| PrefetchedLoad { value, load_nanos, cross });
            let end = self.offset_nanos();
            drop(fetch_span);
            self.spans.lock().expect("prefetch spans poisoned").push((start, end));
            let mut state = self.state.lock().expect("prefetch state poisoned");
            state.slots.insert(node.0, Slot::Done(Some(result)));
            drop(state);
            self.ready.notify_all();
        }
    }

    /// Block until `node`'s prefetch lands (or report cancellation).
    pub fn take(&self, node: NodeId) -> PrefetchTake {
        let mut state = self.state.lock().expect("prefetch state poisoned");
        loop {
            match state.slots.get_mut(&node.0) {
                Some(Slot::Done(result)) => {
                    return PrefetchTake::Ready(result.take().expect("prefetch taken twice"));
                }
                Some(Slot::InFlight) => {}
                Some(Slot::Cancelled) => return PrefetchTake::Cancelled,
                None => {
                    if state.halted {
                        // Claim it as cancelled so a racing lane can't
                        // start a duplicate fetch.
                        state.slots.insert(node.0, Slot::Cancelled);
                        return PrefetchTake::Cancelled;
                    }
                }
            }
            state = self.ready.wait(state).expect("prefetch state poisoned");
        }
    }

    /// Stop starting new fetches (in-flight ones complete). Idempotent.
    pub fn halt(&self) {
        if !self.halted_flag.swap(true, Ordering::Relaxed) {
            self.state.lock().expect("prefetch state poisoned").halted = true;
            self.ready.notify_all();
        }
    }

    /// Epoch-relative wall offsets of each completed fetch.
    pub fn spans(&self) -> Vec<(Nanos, Nanos)> {
        self.spans.lock().expect("prefetch spans poisoned").clone()
    }

    fn offset_nanos(&self) -> Nanos {
        helix_common::timing::duration_to_nanos(self.epoch.elapsed())
    }
}

// ---------------------------------------------------------------------
// Plan lane
// ---------------------------------------------------------------------

/// Everything speculative planning needs, snapshotted from a session at
/// the moment an iteration enters its execute phase. Cheap clones of the
/// small per-session maps plus a live catalog handle (reads race `t`'s
/// writes, which is why the read set is revalidated before use).
#[derive(Clone)]
pub struct SpeculationInputs {
    pub(crate) catalog: Arc<MaterializationCatalog>,
    /// The session's execution environment, frozen with the rest of the
    /// snapshot: speculative signatures are keyed by the same provenance
    /// (seed) the consuming `prepare_iteration` will use, so the sigs
    /// equality check validates environment along with structure.
    pub(crate) env: ExecEnv,
    pub(crate) volatile_nonces: HashMap<String, u64>,
    pub(crate) compute_stats: HashMap<Signature, Nanos>,
    pub(crate) reuse: ReuseScope,
    pub(crate) default_compute_nanos: Nanos,
}

/// A plan computed ahead of its iteration, plus everything needed to
/// prove it is still the serial plan when its turn comes. Validation is
/// content-based: the consuming `prepare_iteration` recomputes the
/// signature chain itself and compares (`sigs` equality subsumes
/// workflow identity, nonce state, and execution-environment provenance
/// — two workflows with identical chains are equivalent by
/// Definition 3), then revalidates the entire
/// planner read set. No address or name comparison is trusted.
pub struct SpeculativePlan {
    pub(crate) sigs: Vec<Signature>,
    pub(crate) plan: Plan,
    pub(crate) read_set: PlanReadSet,
}

/// Speculatively plan `wf` from a snapshot (read-only; safe to run on a
/// thread while the previous iteration executes). The plan is solved
/// from a *frozen* copy of the read set, so the returned read set is, by
/// construction, exactly what the plan consumed — concurrent catalog
/// mutations can only make validation fail, never let a stale plan pass.
pub fn speculate(inputs: &SpeculationInputs, wf: &Workflow) -> SpeculativePlan {
    let _span = helix_obs::span(helix_obs::layer::PIPELINE, "speculate").track("planner");
    let sigs = chain_signatures(wf, &inputs.volatile_nonces, &inputs.env);
    let plan_inputs = PlanInputs {
        sigs: &sigs,
        catalog: &inputs.catalog,
        reuse: inputs.reuse,
        compute_stats: &inputs.compute_stats,
        default_compute_nanos: inputs.default_compute_nanos,
    };
    let read_set = plan_read_set(wf, &plan_inputs);
    let plan = plan_from_read_set(wf, &read_set, inputs.default_compute_nanos);
    SpeculativePlan { sigs, plan, read_set }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::Scalar;
    use helix_storage::DiskProfile;

    fn scalar(v: f64) -> Value {
        Value::Scalar(Scalar::F64(v))
    }

    #[test]
    fn background_writer_lands_staged_frames_and_seals_the_manifest() {
        let catalog =
            Arc::new(MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap());
        let writer = BackgroundWriter::new(Arc::clone(&catalog), None);
        let mut frames = Vec::new();
        for i in 0..8 {
            let sig = Signature::of_str(&format!("bg-{i}"));
            let (_, _, frame) = catalog.stage_owned(sig, "", "n", 0, &scalar(i as f64)).unwrap();
            frames.push((sig, frame));
        }
        for (sig, frame) in &frames {
            writer.enqueue(*sig, Arc::clone(frame));
        }
        writer.sync().unwrap();
        assert_eq!(catalog.pending_stages(), 0);
        for (sig, _) in &frames {
            assert!(catalog.root().join(format!("{}.hxm", sig.to_hex())).exists());
        }
        // Manifest sealed: a reopen sees every artifact.
        let root = catalog.root().to_path_buf();
        drop(writer);
        drop(catalog);
        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert_eq!(reopened.len(), 8);
    }

    #[test]
    fn writer_drop_drains_outstanding_writes() {
        let catalog =
            Arc::new(MaterializationCatalog::open_temp(DiskProfile::scaled(5_000_000, 0)).unwrap());
        let writer = BackgroundWriter::new(Arc::clone(&catalog), None);
        let sig = Signature::of_str("drop-drains");
        let (_, _, frame) = catalog.stage_owned(sig, "", "n", 0, &scalar(1.0)).unwrap();
        writer.enqueue(sig, frame);
        drop(writer);
        assert_eq!(catalog.pending_stages(), 0, "drop waits for the queue");
        let (value, _) = catalog.load(sig).unwrap();
        assert_eq!(value.as_scalar().unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn prefetcher_fetches_each_load_once_and_serves_takes() {
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let mut jobs = Vec::new();
        for i in 0..6u32 {
            let sig = Signature::of_str(&format!("pf-{i}"));
            catalog.store(sig, "n", 0, &scalar(i as f64)).unwrap();
            jobs.push((NodeId(i), sig));
        }
        let prefetcher = Prefetcher::new(&catalog, "", Instant::now(), jobs);
        std::thread::scope(|scope| {
            for _ in 0..prefetcher.lanes() {
                scope.spawn(|| prefetcher.run_lane());
            }
            // Take out of submission order to exercise blocking takes.
            for i in [3u32, 0, 5, 1, 4, 2] {
                match prefetcher.take(NodeId(i)) {
                    PrefetchTake::Ready(result) => {
                        let load = result.unwrap();
                        assert_eq!(load.value.as_scalar().unwrap().as_f64(), Some(i as f64));
                    }
                    PrefetchTake::Cancelled => panic!("nothing was halted"),
                }
            }
            prefetcher.halt();
        });
        assert_eq!(prefetcher.spans().len(), 6, "every load fetched exactly once");
    }

    #[test]
    fn halted_prefetcher_cancels_unstarted_loads() {
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let sig = Signature::of_str("never-fetched");
        catalog.store(sig, "n", 0, &scalar(1.0)).unwrap();
        let prefetcher = Prefetcher::new(&catalog, "", Instant::now(), vec![(NodeId(0), sig)]);
        prefetcher.halt();
        // No lane ever ran: the take must not hang.
        match prefetcher.take(NodeId(0)) {
            PrefetchTake::Cancelled => {}
            PrefetchTake::Ready(_) => panic!("halted before any lane started"),
        }
        assert!(prefetcher.spans().is_empty());
    }
}
