//! The Rust embedding of HML (paper §3.2).
//!
//! HML is an embedded DSL: "users can freely incorporate Scala code for
//! UDFs directly into HML". The Rust equivalent is a builder —
//! [`Workflow`] — whose methods mirror HML's statements:
//!
//! | HML (paper Figure 3a)                   | here                          |
//! |-----------------------------------------|-------------------------------|
//! | `data refers_to FileSource(...)`        | [`Workflow::source`]          |
//! | `data is_read_into rows using CSVScanner` | [`Workflow::csv_scan`]      |
//! | `ageExt refers_to FieldExtractor("age")`| [`Workflow::field_extractor`] |
//! | `Bucketizer(ageExt, bins=10)`           | [`Workflow::bucketizer`]      |
//! | `InteractionFeature(Array(e, o))`       | [`Workflow::interaction`]     |
//! | `rows has_extractors(...)` + `income results_from rows with_labels target` | [`Workflow::examples`] |
//! | `incPred refers_to Learner("LR", 0.1)`  | [`Workflow::learner`]         |
//! | `predictions results_from incPred on income` | [`Workflow::predict`]   |
//! | `checkResults refers_to Reducer(udf)`   | [`Workflow::reduce`] & friends|
//! | `checkResults uses ...`                 | [`Workflow::uses`]            |
//! | `checked is_output()`                   | [`Workflow::output`]          |
//!
//! UDF closures carry an explicit `version` token: HELIX detects change by
//! representational comparison of declarations (§4.2), and a closure's
//! body is opaque to us just as compiled Scala was to HELIX — bumping the
//! version is the declaration change.
//!
//! Handles are phase-typed ([`DcHandle`], [`ModelHandle`], [`ScalarHandle`])
//! so wiring mistakes (e.g. reducing a model) fail at compile time.
//! Structural misuse that types cannot catch (duplicate names, foreign
//! handles) panics immediately at declaration site with a clear message —
//! these are programming errors in the workflow definition, not runtime
//! conditions.

use crate::operator::{decl_signature, ExecContext, NodeSpec, Operator};
use crate::ops::{extract, learn, reduce, source, synth, Algo};
use helix_common::hash::Signature;
use helix_common::Result;
use helix_data::{FeatureBundle, Record, Schema, Value};
use helix_exec::Phase;
use helix_flow::{Dag, NodeId};
use std::collections::HashMap;
use std::sync::Arc;

/// Handle to a node producing a data collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DcHandle(NodeId);

/// Handle to a node producing an ML model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelHandle(NodeId);

/// Handle to a node producing a scalar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScalarHandle(NodeId);

/// Anything that names a DAG node.
pub trait AsNode: Copy {
    /// The underlying node id.
    fn node(self) -> NodeId;
}

impl AsNode for DcHandle {
    fn node(self) -> NodeId {
        self.0
    }
}
impl AsNode for ModelHandle {
    fn node(self) -> NodeId {
        self.0
    }
}
impl AsNode for ScalarHandle {
    fn node(self) -> NodeId {
        self.0
    }
}

/// A declarative ML workflow: the unit the session compiles, optimizes and
/// executes each iteration.
pub struct Workflow {
    name: String,
    dag: Dag<NodeSpec>,
    by_name: HashMap<String, NodeId>,
}

impl Workflow {
    /// Start an empty workflow.
    pub fn new(name: impl Into<String>) -> Workflow {
        Workflow { name: name.into(), dag: Dag::new(), by_name: HashMap::new() }
    }

    /// Workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying DAG (read-only).
    pub fn dag(&self) -> &Dag<NodeSpec> {
        &self.dag
    }

    /// Number of declared operators.
    pub fn len(&self) -> usize {
        self.dag.len()
    }

    /// True when nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.dag.is_empty()
    }

    /// Node id by operator name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Output node ids (marked via [`output`](Self::output)).
    pub fn outputs(&self) -> Vec<NodeId> {
        self.dag.iter().filter(|(_, spec)| spec.is_output).map(|(id, _)| id).collect()
    }

    fn add(
        &mut self,
        name: &str,
        phase: Phase,
        decl_sig: Signature,
        volatile: bool,
        operator: Arc<dyn Operator>,
        inputs: &[NodeId],
    ) -> NodeId {
        assert!(
            !self.by_name.contains_key(name),
            "workflow `{}`: duplicate operator name `{name}`",
            self.name
        );
        let id = self.dag.add_node(NodeSpec {
            name: name.to_string(),
            phase,
            decl_sig,
            volatile,
            is_output: false,
            operator,
        });
        for &input in inputs {
            self.dag.add_edge(input, id).unwrap_or_else(|e| {
                panic!("workflow `{}`: bad edge into `{name}`: {e}", self.name)
            });
        }
        self.by_name.insert(name.to_string(), id);
        id
    }

    // ------------------------------------------------------------------
    // DPR declarations
    // ------------------------------------------------------------------

    /// Declare a data source backed by a generator closure. `version` is
    /// the declaration version: bump it to signal "the data changed".
    /// The generator must not consume the context seed/RNG — use
    /// [`source_seeded`](Self::source_seeded) for synthetic random data.
    pub fn source<F>(&mut self, name: &str, version: u64, generate: F) -> DcHandle
    where
        F: Fn(&ExecContext) -> Result<Value> + Send + Sync + 'static,
    {
        let sig = decl_signature("Source", &[name, &format!("v{version}")]);
        let id = self.add(
            name,
            Phase::Dpr,
            sig,
            false,
            Arc::new(source::ClosureSource::new(generate)),
            &[],
        );
        DcHandle(id)
    }

    /// Declare a data source whose generator draws on the context
    /// seed/RNG (synthetic random data). The operator declares
    /// [`ProvenanceInputs::SEED`](crate::operator::ProvenanceInputs), so
    /// its output — and everything downstream — is keyed by seed and
    /// never shared between sessions running different seeds.
    pub fn source_seeded<F>(&mut self, name: &str, version: u64, generate: F) -> DcHandle
    where
        F: Fn(&ExecContext) -> Result<Value> + Send + Sync + 'static,
    {
        let sig = decl_signature("SeededSource", &[name, &format!("v{version}")]);
        let id = self.add(
            name,
            Phase::Dpr,
            sig,
            false,
            Arc::new(source::ClosureSource::seeded(generate)),
            &[],
        );
        DcHandle(id)
    }

    /// Parse raw single-column lines into named columns (the paper's
    /// `CSVScanner`).
    pub fn csv_scan(&mut self, name: &str, input: DcHandle, columns: &[&str]) -> DcHandle {
        let mut params = vec![name];
        params.extend_from_slice(columns);
        let sig = decl_signature("CsvScan", &params);
        let id = self.add(
            name,
            Phase::Dpr,
            sig,
            false,
            Arc::new(source::CsvScan::new(columns)),
            &[input.0],
        );
        DcHandle(id)
    }

    /// Generic flat-mapping scanner with a versioned UDF.
    pub fn scan<F>(
        &mut self,
        name: &str,
        input: DcHandle,
        version: u64,
        out_schema: Arc<Schema>,
        map: F,
    ) -> DcHandle
    where
        F: Fn(&Record, &Schema) -> Vec<Record> + Send + Sync + 'static,
    {
        let sig = decl_signature(
            "Scan",
            &[name, &format!("v{version}"), &out_schema.signature().to_hex()],
        );
        let id = self.add(
            name,
            Phase::Dpr,
            sig,
            false,
            Arc::new(source::RecordScan::new(out_schema, map)),
            &[input.0],
        );
        DcHandle(id)
    }

    /// `FieldExtractor(column)`.
    pub fn field_extractor(&mut self, name: &str, input: DcHandle, column: &str) -> DcHandle {
        let sig = decl_signature("FieldExtractor", &[name, column]);
        let id = self.add(
            name,
            Phase::Dpr,
            sig,
            false,
            Arc::new(extract::FieldExtractor::new(column)),
            &[input.0],
        );
        DcHandle(id)
    }

    /// `Bucketizer(column, bins)` — learned quantile discretization.
    pub fn bucketizer(
        &mut self,
        name: &str,
        input: DcHandle,
        column: &str,
        bins: usize,
    ) -> DcHandle {
        let sig = decl_signature("Bucketizer", &[name, column, &format!("bins={bins}")]);
        let id = self.add(
            name,
            Phase::Dpr,
            sig,
            false,
            Arc::new(extract::BucketizerExtractor::new(column, bins)),
            &[input.0],
        );
        DcHandle(id)
    }

    /// `InteractionFeature(a, b)` — categorical cross product.
    pub fn interaction(&mut self, name: &str, a: DcHandle, b: DcHandle) -> DcHandle {
        let sig = decl_signature("Interaction", &[name]);
        let id = self.add(
            name,
            Phase::Dpr,
            sig,
            false,
            Arc::new(extract::InteractionFeature),
            &[a.0, b.0],
        );
        DcHandle(id)
    }

    /// Lowercasing, stop-word-removing tokenizer over a text column.
    pub fn tokenize(&mut self, name: &str, input: DcHandle, column: &str) -> DcHandle {
        let sig = decl_signature("Tokenize", &[name, column, "lower"]);
        let id = self.add(
            name,
            Phase::Dpr,
            sig,
            false,
            Arc::new(extract::TokenizeColumn::new(column)),
            &[input.0],
        );
        DcHandle(id)
    }

    /// Case-preserving tokenizer (for name-detection features).
    pub fn tokenize_cased(&mut self, name: &str, input: DcHandle, column: &str) -> DcHandle {
        let sig = decl_signature("Tokenize", &[name, column, "cased"]);
        let id = self.add(
            name,
            Phase::Dpr,
            sig,
            false,
            Arc::new(extract::TokenizeColumn::cased(column)),
            &[input.0],
        );
        DcHandle(id)
    }

    /// Versioned feature-extraction UDF.
    pub fn udf_extractor<F>(
        &mut self,
        name: &str,
        input: DcHandle,
        version: u64,
        udf: F,
    ) -> DcHandle
    where
        F: Fn(&Record, &Schema) -> FeatureBundle + Send + Sync + 'static,
    {
        let sig = decl_signature("UdfExtractor", &[name, &format!("v{version}")]);
        let id = self.add(
            name,
            Phase::Dpr,
            sig,
            false,
            Arc::new(extract::UdfExtractor::new(udf)),
            &[input.0],
        );
        DcHandle(id)
    }

    /// Join token units against a knowledge base column, emitting keyed
    /// context units.
    pub fn kb_join(
        &mut self,
        name: &str,
        units: DcHandle,
        kb: DcHandle,
        kb_column: &str,
        context_window: usize,
    ) -> DcHandle {
        let sig = decl_signature("KbJoin", &[name, kb_column, &format!("window={context_window}")]);
        let id = self.add(
            name,
            Phase::Dpr,
            sig,
            false,
            Arc::new(synth::KbJoin { kb_column: kb_column.to_string(), context_window }),
            &[units.0, kb.0],
        );
        DcHandle(id)
    }

    /// Assemble examples from a base collection and extractors, optionally
    /// labeled (the paper's `has_extractors` + `results_from … with_labels`).
    ///
    /// The compiler's automatic extractor→synthesizer edges (the dotted
    /// edges of Figure 3b) are exactly the input edges added here.
    pub fn examples(
        &mut self,
        name: &str,
        base: DcHandle,
        extractors: &[DcHandle],
        label: Option<DcHandle>,
    ) -> DcHandle {
        assert!(!extractors.is_empty(), "examples `{name}` needs at least one extractor");
        let owners: Vec<u32> = extractors.iter().map(|h| h.0 .0).collect();
        let ext_names: Vec<String> =
            extractors.iter().map(|h| self.dag.payload(h.0).name.clone()).collect();
        let mut params: Vec<String> = vec![name.to_string()];
        params.extend(ext_names.iter().cloned());
        if label.is_some() {
            params.push("labeled".into());
        }
        let params_ref: Vec<&str> = params.iter().map(String::as_str).collect();
        let sig = decl_signature("AssembleExamples", &params_ref);
        let mut inputs = vec![base.0];
        inputs.extend(extractors.iter().map(|h| h.0));
        if let Some(l) = label {
            inputs.push(l.0);
        }
        let id = self.add(
            name,
            Phase::Dpr,
            sig,
            false,
            Arc::new(synth::AssembleExamples { owners, ext_names, labeled: label.is_some() }),
            &inputs,
        );
        DcHandle(id)
    }

    /// Fully general versioned UDF over one or more collections, producing
    /// a collection (the paper's "imperative code as needed for UDFs"
    /// escape hatch — e.g. the IE workflow's candidate-pair ⋈ knowledge-base
    /// labeling join).
    pub fn udf_collection<F>(
        &mut self,
        name: &str,
        phase: Phase,
        inputs: &[DcHandle],
        version: u64,
        udf: F,
    ) -> DcHandle
    where
        F: Fn(&[Arc<Value>], &ExecContext) -> Result<Value> + Send + Sync + 'static,
    {
        assert!(!inputs.is_empty(), "udf_collection `{name}` needs at least one input");
        let sig = decl_signature("UdfCollection", &[name, &format!("v{version}")]);
        let input_ids: Vec<NodeId> = inputs.iter().map(|h| h.0).collect();
        let id = self.add(name, phase, sig, false, Arc::new(udf), &input_ids);
        DcHandle(id)
    }

    /// Like [`udf_collection`](Self::udf_collection), but for UDFs that
    /// draw on the context seed or RNG: the operator declares
    /// [`ProvenanceInputs::SEED`](crate::operator::ProvenanceInputs), so
    /// the tracker keys its artifacts by seed and sessions with
    /// different seeds never share them. (A plain `udf_collection`
    /// closure that consumes the seed fails loudly at execution time.)
    pub fn udf_collection_seeded<F>(
        &mut self,
        name: &str,
        phase: Phase,
        inputs: &[DcHandle],
        version: u64,
        udf: F,
    ) -> DcHandle
    where
        F: Fn(&[Arc<Value>], &ExecContext) -> Result<Value> + Send + Sync + 'static,
    {
        assert!(!inputs.is_empty(), "udf_collection_seeded `{name}` needs at least one input");
        let sig = decl_signature("UdfCollectionSeeded", &[name, &format!("v{version}")]);
        let input_ids: Vec<NodeId> = inputs.iter().map(|h| h.0).collect();
        let id = self.add(
            name,
            phase,
            sig,
            false,
            Arc::new(crate::operator::SeededOperator(udf)),
            &input_ids,
        );
        DcHandle(id)
    }

    // ------------------------------------------------------------------
    // L/I declarations
    // ------------------------------------------------------------------

    /// `Learner(algo)` — produces a model node. Random-Fourier learners
    /// are volatile (paper §6.2: MNIST's nondeterministic preprocessing).
    pub fn learner(&mut self, name: &str, input: DcHandle, algo: Algo) -> ModelHandle {
        let params = algo.sig_params();
        let mut params_ref: Vec<&str> = vec![name];
        params_ref.extend(params.iter().map(String::as_str));
        let sig = decl_signature("Learner", &params_ref);
        let volatile = algo.is_volatile();
        let id = self.add(
            name,
            Phase::LearnInference,
            sig,
            volatile,
            Arc::new(learn::Learner { algo }),
            &[input.0],
        );
        ModelHandle(id)
    }

    /// Apply a model to a collection (`predictions results_from incPred on
    /// income`).
    pub fn predict(&mut self, name: &str, model: ModelHandle, data: DcHandle) -> DcHandle {
        let sig = decl_signature("Predict", &[name]);
        let id = self.add(
            name,
            Phase::LearnInference,
            sig,
            false,
            Arc::new(learn::Predict),
            &[model.0, data.0],
        );
        DcHandle(id)
    }

    /// One example per distinct entity key, with its learned embedding.
    pub fn embed_entities(
        &mut self,
        name: &str,
        model: ModelHandle,
        entities: DcHandle,
    ) -> DcHandle {
        let sig = decl_signature("EmbedEntities", &[name]);
        let id = self.add(
            name,
            Phase::LearnInference,
            sig,
            false,
            Arc::new(synth::EmbedEntities),
            &[model.0, entities.0],
        );
        DcHandle(id)
    }

    // ------------------------------------------------------------------
    // PPR declarations
    // ------------------------------------------------------------------

    /// Test-split accuracy reducer (the paper's `checkResults`).
    pub fn accuracy(&mut self, name: &str, predictions: DcHandle) -> ScalarHandle {
        let sig = decl_signature("AccuracyReducer", &[name]);
        let id = self.add(
            name,
            Phase::Ppr,
            sig,
            false,
            Arc::new(reduce::AccuracyReducer),
            &[predictions.0],
        );
        ScalarHandle(id)
    }

    /// Test-split precision/recall/F1 reducer.
    pub fn f1(&mut self, name: &str, predictions: DcHandle) -> ScalarHandle {
        let sig = decl_signature("F1Reducer", &[name]);
        let id =
            self.add(name, Phase::Ppr, sig, false, Arc::new(reduce::F1Reducer), &[predictions.0]);
        ScalarHandle(id)
    }

    /// Cluster-size summary reducer.
    pub fn cluster_summary(&mut self, name: &str, assigned: DcHandle, k: usize) -> ScalarHandle {
        let sig = decl_signature("ClusterSummary", &[name, &format!("k={k}")]);
        let id = self.add(
            name,
            Phase::Ppr,
            sig,
            false,
            Arc::new(reduce::ClusterSummaryReducer { k }),
            &[assigned.0],
        );
        ScalarHandle(id)
    }

    /// Versioned scalar-producing UDF reducer.
    pub fn reduce<H, F>(&mut self, name: &str, input: H, version: u64, udf: F) -> ScalarHandle
    where
        H: AsNode,
        F: Fn(&Value, &ExecContext) -> Result<Value> + Send + Sync + 'static,
    {
        let sig = decl_signature("UdfReducer", &[name, &format!("v{version}")]);
        let id = self.add(
            name,
            Phase::Ppr,
            sig,
            false,
            Arc::new(reduce::UdfReducer::new(udf)),
            &[input.node()],
        );
        ScalarHandle(id)
    }

    /// Versioned scalar-producing UDF over several inputs (the n-ary twin
    /// of [`reduce`](Self::reduce); the join point of branchy workflows).
    pub fn reduce_many<H, F, const N: usize>(
        &mut self,
        name: &str,
        inputs: [H; N],
        version: u64,
        udf: F,
    ) -> ScalarHandle
    where
        H: AsNode,
        F: Fn(&[Arc<Value>], &ExecContext) -> Result<Value> + Send + Sync + 'static,
    {
        assert!(N > 0, "reduce_many `{name}` needs at least one input");
        let sig = decl_signature("UdfReducerN", &[name, &format!("v{version}")]);
        let input_ids: Vec<NodeId> = inputs.iter().map(|h| h.node()).collect();
        let id = self.add(
            name,
            Phase::Ppr,
            sig,
            false,
            Arc::new(reduce::UdfReducerN::new(N, udf)),
            &input_ids,
        );
        ScalarHandle(id)
    }

    // ------------------------------------------------------------------
    // Structure declarations
    // ------------------------------------------------------------------

    /// Declare an explicit dependency the optimizer cannot see inside a
    /// UDF (the paper's `uses` keyword, §5.4: prevents premature pruning /
    /// uncaching).
    pub fn uses<A: AsNode, B: AsNode>(&mut self, user: A, dependency: B) {
        self.dag
            .add_edge(dependency.node(), user.node())
            .unwrap_or_else(|e| panic!("workflow `{}`: bad uses edge: {e}", self.name));
    }

    /// Mark a node as a required workflow output (`is_output()`).
    pub fn output<H: AsNode>(&mut self, handle: H) {
        self.dag.payload_mut(handle.node()).is_output = true;
    }

    /// Mark an already-declared operator as an output by name (useful when
    /// inspecting intermediates of a workflow built elsewhere, e.g. for
    /// data-driven pruning analyses).
    pub fn mark_output(&mut self, name: &str) -> helix_common::Result<()> {
        let id = self
            .node_by_name(name)
            .ok_or_else(|| helix_common::HelixError::not_found("operator", name))?;
        self.dag.payload_mut(id).is_output = true;
        Ok(())
    }

    /// Graphviz rendering of the workflow DAG.
    pub fn to_dot(&self) -> String {
        self.dag.to_dot(|_, spec| format!("{}\\n[{}]", spec.name, spec.phase.label()))
    }
}

impl std::fmt::Debug for Workflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workflow")
            .field("name", &self.name)
            .field("operators", &self.dag.len())
            .field("outputs", &self.outputs().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::{FieldValue, RecordBatch, Scalar};

    /// The paper's Census workflow (Figure 3a), on inline data.
    pub fn census_workflow() -> Workflow {
        let mut wf = Workflow::new("census");
        let data = wf.source("data", 1, |_ctx| {
            Ok(Value::records(source::lines_batch(
                "39,Bachelors,Adm-clerical,White,1\n50,Masters,Exec-managerial,White,0\n\
                 38,HS-grad,Handlers-cleaners,Black,0\n28,Bachelors,Prof-specialty,Asian,1\n",
                "44,Masters,Exec-managerial,White,1\n23,HS-grad,Adm-clerical,White,0\n",
            )?))
        });
        let rows = wf.csv_scan("rows", data, &["age", "education", "occupation", "race", "target"]);
        let edu = wf.field_extractor("eduExt", rows, "education");
        let occ = wf.field_extractor("occExt", rows, "occupation");
        let _race = wf.field_extractor("raceExt", rows, "race"); // pruned: unused
        let age_bucket = wf.bucketizer("ageBucket", rows, "age", 2);
        let edu_x_occ = wf.interaction("eduXocc", edu, occ);
        let target = wf.field_extractor("target", rows, "target");
        let income = wf.examples("income", rows, &[edu, occ, age_bucket, edu_x_occ], Some(target));
        let model = wf.learner("incPred", income, Algo::LogisticRegression { l2: 0.1, epochs: 8 });
        let predictions = wf.predict("predictions", model, income);
        let checked = wf.accuracy("checked", predictions);
        wf.output(checked);
        wf
    }

    #[test]
    fn census_workflow_structure() {
        let wf = census_workflow();
        assert_eq!(wf.len(), 12);
        assert_eq!(wf.outputs().len(), 1);
        let rows = wf.node_by_name("rows").unwrap();
        let income = wf.node_by_name("income").unwrap();
        // Extractor→synthesizer edges were added automatically.
        let income_parents = wf.dag().parents(income);
        assert!(income_parents.contains(&rows));
        assert!(income_parents.contains(&wf.node_by_name("eduXocc").unwrap()));
        assert_eq!(income_parents.len(), 6, "base + 4 extractors + label");
        // Topologically valid.
        assert!(wf.dag().topo_order().is_ok());
    }

    #[test]
    fn dot_rendering_mentions_phases() {
        let wf = census_workflow();
        let dot = wf.to_dot();
        assert!(dot.contains("income"));
        assert!(dot.contains("[DPR]"));
        assert!(dot.contains("[L/I]"));
        assert!(dot.contains("[PPR]"));
    }

    #[test]
    #[should_panic(expected = "duplicate operator name")]
    fn duplicate_names_panic() {
        let mut wf = Workflow::new("dup");
        wf.source("a", 1, |_| Ok(Value::Scalar(Scalar::I64(1))));
        wf.source("a", 1, |_| Ok(Value::Scalar(Scalar::I64(2))));
    }

    #[test]
    fn uses_adds_explicit_edge() {
        let mut wf = Workflow::new("uses");
        let a = wf.source("a", 1, |_| Ok(Value::Scalar(Scalar::I64(1))));
        let b = wf.source("b", 1, |_| Ok(Value::Scalar(Scalar::I64(2))));
        let r = wf.reduce("r", a, 1, |_v, _| Ok(Value::Scalar(Scalar::I64(0))));
        wf.uses(r, b);
        let parents = wf.dag().parents(r.node());
        assert_eq!(parents.len(), 2);
    }

    #[test]
    fn decl_signatures_differ_by_params() {
        let mut wf1 = Workflow::new("w");
        let d1 = wf1.source("d", 1, |_| Ok(Value::Scalar(Scalar::I64(1))));
        let b1 = wf1.bucketizer("b", d1, "age", 10);

        let mut wf2 = Workflow::new("w");
        let d2 = wf2.source("d", 1, |_| Ok(Value::Scalar(Scalar::I64(1))));
        let b2 = wf2.bucketizer("b", d2, "age", 12);

        assert_eq!(wf1.dag().payload(d1.node()).decl_sig, wf2.dag().payload(d2.node()).decl_sig);
        assert_ne!(
            wf1.dag().payload(b1.node()).decl_sig,
            wf2.dag().payload(b2.node()).decl_sig,
            "bins change must change the declaration signature"
        );
    }

    #[test]
    fn source_version_changes_signature() {
        let mut wf1 = Workflow::new("w");
        let d1 = wf1.source("d", 1, |_| Ok(Value::Scalar(Scalar::I64(1))));
        let mut wf2 = Workflow::new("w");
        let d2 = wf2.source("d", 2, |_| Ok(Value::Scalar(Scalar::I64(1))));
        assert_ne!(wf1.dag().payload(d1.node()).decl_sig, wf2.dag().payload(d2.node()).decl_sig);
    }

    #[test]
    fn volatile_learner_flagged() {
        let mut wf = Workflow::new("w");
        let d = wf.source("d", 1, |_| {
            Ok(Value::records(RecordBatch::new(
                Schema::new(["x"]),
                vec![Record::train(vec![FieldValue::Int(1)])],
            )?))
        });
        let x = wf.field_extractor("x", d, "x");
        let ex = wf.examples("ex", d, &[x], None);
        let rff = wf.learner("rff", ex, Algo::RandomFourier { dim_out: 4, gamma: 0.1 });
        let lr = wf.learner("lr", ex, Algo::LogisticRegression { l2: 0.1, epochs: 1 });
        assert!(wf.dag().payload(rff.node()).volatile);
        assert!(!wf.dag().payload(lr.node()).volatile);
    }
}
