//! Compile-time planning: cost assembly + OPT-EXEC-PLAN (paper §5.2).
//!
//! Given the chain signatures and the catalog/statistics from previous
//! iterations, build the per-node [`NodeCosts`] and hand the instance to
//! `helix-flow`'s max-flow solver. Program slicing (§5.4) falls out of the
//! same machinery: nodes with no path to an output are never required by
//! anything, so the optimizer prunes them.

use crate::dsl::Workflow;
use crate::session::ReuseScope;
use helix_common::hash::Signature;
use helix_common::timing::Nanos;
use helix_exec::Phase;
use helix_flow::oep::{NodeCosts, OepProblem, State};
use helix_flow::NodeId;
use helix_storage::MaterializationCatalog;
use std::collections::HashMap;

/// The execution plan for one iteration.
#[derive(Clone, Debug)]
pub struct Plan {
    /// OEP state per node.
    pub states: Vec<State>,
    /// Estimated run time of the plan under the cost model.
    pub estimated_nanos: Nanos,
    /// Per-node costs used (kept for reports and tests).
    pub costs: Vec<NodeCosts>,
}

/// Inputs the planner needs from the session.
pub struct PlanInputs<'a> {
    /// Chain signatures per node.
    pub sigs: &'a [Signature],
    /// Catalog for load availability and load-time estimates.
    pub catalog: &'a MaterializationCatalog,
    /// Which phases may reuse materialized results.
    pub reuse: ReuseScope,
    /// Measured compute times from previous iterations, keyed by signature.
    pub compute_stats: &'a HashMap<Signature, Nanos>,
    /// Fallback compute estimate for never-before-seen operators.
    pub default_compute_nanos: Nanos,
}

/// The catalog/statistics lookups planning performs, one `(estimated
/// load, measured compute)` pair per node in id order. This is the
/// planner's *entire* read footprint: [`plan`] is a pure function of the
/// workflow and this vector, which is what makes speculative
/// cross-iteration planning sound — a plan computed early from a read-set
/// snapshot is byte-identical to the serial plan whenever the snapshot
/// still matches at commit time (see `helix_core::pipeline`).
pub type PlanReadSet = Vec<(Option<Nanos>, Option<Nanos>)>;

/// Capture the planner's read set from live catalog + statistics state.
pub fn plan_read_set(wf: &Workflow, inputs: &PlanInputs<'_>) -> PlanReadSet {
    wf.dag()
        .iter()
        .map(|(id, spec)| {
            let sig = inputs.sigs[id.ix()];
            let load = if inputs.reuse.allows(spec.phase) {
                inputs.catalog.estimated_load_nanos(sig)
            } else {
                None
            };
            (load, inputs.compute_stats.get(&sig).copied())
        })
        .collect()
}

/// Build costs and solve OPT-EXEC-PLAN.
pub fn plan(wf: &Workflow, inputs: &PlanInputs<'_>) -> Plan {
    plan_from_read_set(wf, &plan_read_set(wf, inputs), inputs.default_compute_nanos)
}

/// Solve OPT-EXEC-PLAN from a frozen read set (no live catalog access).
pub fn plan_from_read_set(wf: &Workflow, reads: &PlanReadSet, default_compute: Nanos) -> Plan {
    let dag = wf.dag();
    let costs: Vec<NodeCosts> = dag
        .iter()
        .zip(reads.iter().copied())
        .map(|((_, spec), (load, stat))| {
            let compute = stat.unwrap_or(default_compute).max(1);
            let load = load.map(|l| l.max(1));
            let mut c = NodeCosts::new(compute, load);
            if spec.is_output {
                c = c.required();
            }
            c
        })
        .collect();
    let solution = OepProblem::new(dag, &costs).solve();
    Plan { states: solution.states, estimated_nanos: solution.total_cost, costs }
}

impl ReuseScope {
    /// Whether results of `phase` operators may be reused from the catalog.
    pub fn allows(self, phase: Phase) -> bool {
        match self {
            ReuseScope::All => true,
            ReuseScope::DprOnly => phase == Phase::Dpr,
            ReuseScope::None => false,
        }
    }
}

/// Execution order: topological order restricted to non-pruned nodes.
pub fn execution_order(wf: &Workflow, states: &[State]) -> Vec<NodeId> {
    wf.dag()
        .topo_order()
        .expect("workflow DAG must be acyclic")
        .into_iter()
        .filter(|id| states[id.ix()] != State::Prune)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::{chain_signatures, ExecEnv};
    use helix_data::{Scalar, Value};
    use helix_storage::DiskProfile;

    fn three_chain() -> crate::dsl::Workflow {
        let mut wf = crate::dsl::Workflow::new("p");
        let a = wf.source("a", 1, |_| Ok(Value::Scalar(Scalar::I64(1))));
        let b = wf.reduce("b", a, 1, |_v, _| Ok(Value::Scalar(Scalar::I64(2))));
        let c = wf.reduce("c", b, 1, |_v, _| Ok(Value::Scalar(Scalar::I64(3))));
        wf.output(c);
        wf
    }

    #[test]
    fn first_iteration_computes_everything_needed() {
        let wf = three_chain();
        let sigs = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(7));
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let stats = HashMap::new();
        let plan = plan(
            &wf,
            &PlanInputs {
                sigs: &sigs,
                catalog: &catalog,
                reuse: ReuseScope::All,
                compute_stats: &stats,
                default_compute_nanos: 1_000,
            },
        );
        assert!(plan.states.iter().all(|s| *s == State::Compute));
        let order = execution_order(&wf, &plan.states);
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn materialized_output_is_loaded_on_rerun() {
        let wf = three_chain();
        let sigs = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(7));
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let c = wf.node_by_name("c").unwrap();
        catalog.store(sigs[c.ix()], "c", 0, &Value::Scalar(Scalar::I64(3))).unwrap();
        let mut stats = HashMap::new();
        for s in &sigs {
            stats.insert(*s, 1_000_000u64); // computing costs 1ms each
        }
        let plan = plan(
            &wf,
            &PlanInputs {
                sigs: &sigs,
                catalog: &catalog,
                reuse: ReuseScope::All,
                compute_stats: &stats,
                default_compute_nanos: 1_000,
            },
        );
        let id = |n: &str| wf.node_by_name(n).unwrap().ix();
        assert_eq!(plan.states[id("c")], State::Load, "reload the cheap materialized output");
        assert_eq!(plan.states[id("a")], State::Prune);
        assert_eq!(plan.states[id("b")], State::Prune);
    }

    #[test]
    fn reuse_scope_gates_loading() {
        let wf = three_chain();
        let sigs = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(7));
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        for (id, spec) in wf.dag().iter() {
            catalog.store(sigs[id.ix()], &spec.name, 0, &Value::Scalar(Scalar::I64(0))).unwrap();
        }
        let stats: HashMap<Signature, Nanos> = sigs.iter().map(|s| (*s, 1_000_000u64)).collect();
        // ReuseScope::None (KeystoneML-like): everything recomputes.
        let p = plan(
            &wf,
            &PlanInputs {
                sigs: &sigs,
                catalog: &catalog,
                reuse: ReuseScope::None,
                compute_stats: &stats,
                default_compute_nanos: 1_000,
            },
        );
        assert!(p.states.iter().all(|s| *s == State::Compute));
        // DprOnly (DeepDive-like): the PPR reducers recompute, the DPR
        // source may load.
        let p = plan(
            &wf,
            &PlanInputs {
                sigs: &sigs,
                catalog: &catalog,
                reuse: ReuseScope::DprOnly,
                compute_stats: &stats,
                default_compute_nanos: 1_000,
            },
        );
        let id = |n: &str| wf.node_by_name(n).unwrap().ix();
        assert_eq!(p.states[id("a")], State::Load);
        assert_eq!(p.states[id("b")], State::Compute);
        assert_eq!(p.states[id("c")], State::Compute);
    }

    #[test]
    fn unused_branch_is_sliced_away() {
        let mut wf = crate::dsl::Workflow::new("slice");
        let a = wf.source("a", 1, |_| Ok(Value::Scalar(Scalar::I64(1))));
        let _dead = wf.reduce("dead", a, 1, |_v, _| Ok(Value::Scalar(Scalar::I64(0))));
        let live = wf.reduce("live", a, 1, |_v, _| Ok(Value::Scalar(Scalar::I64(0))));
        wf.output(live);
        let sigs = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(7));
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let stats = HashMap::new();
        let p = plan(
            &wf,
            &PlanInputs {
                sigs: &sigs,
                catalog: &catalog,
                reuse: ReuseScope::All,
                compute_stats: &stats,
                default_compute_nanos: 1_000,
            },
        );
        let id = |n: &str| wf.node_by_name(n).unwrap().ix();
        assert_eq!(p.states[id("dead")], State::Prune, "no path to output");
        assert_eq!(p.states[id("live")], State::Compute);
        let order = execution_order(&wf, &p.states);
        assert_eq!(order.len(), 2);
    }
}
