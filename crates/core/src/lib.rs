//! # helix-core
//!
//! The HELIX system itself (paper §§2–5): a declarative workflow layer
//! that optimizes *across* iterations of a machine-learning application.
//!
//! * [`operator`] — the operator abstraction: every DAG node wraps an
//!   [`operator::Operator`] plus the declaration metadata (signature parts,
//!   phase, volatility) that change tracking needs.
//! * [`dsl`] — the Rust embedding of HML (paper §3): a typed
//!   [`dsl::Workflow`] builder with Scanner / Extractor / Synthesizer /
//!   Learner / Reducer declarations, `uses` edges and `is_output` marks.
//! * [`ops`] — the built-in operator library covering the basis functions
//!   `F` of paper §3.1 (parsing, join, feature extraction/transformation/
//!   concatenation, learning, inference, reduce).
//! * [`track`] — change tracking via Merkle-chain signatures (paper §4.2):
//!   equivalence, originality, volatile-operator nonces.
//! * [`plan`] — compile-time planning: program slicing (§5.4) and
//!   OPT-EXEC-PLAN state assignment via max-flow (§5.2).
//! * [`materialize`] — OPT-MAT-PLAN policies (§5.3): the streaming
//!   Algorithm 2 heuristic, always-materialize (HELIX AM), and
//!   never-materialize (HELIX NM), plus an exact small-DAG solver used by
//!   ablation benches.
//! * [`engine`] — the execution engine: runs the plan, manages the cache
//!   with eager out-of-scope eviction, times every node, and applies the
//!   materialization policy under the storage budget.
//! * [`session`] — the iteration driver: owns the catalog and statistics
//!   across iterations and exposes `run(&Workflow)`.
//! * [`driver`] — one iteration as an explicit state machine
//!   ([`SessionDriver`]): solo sessions drive it inline, pooled service
//!   runners park it between steps so idle sessions cost memory, not
//!   threads.
//! * [`prune`] — data-driven pruning helpers (zero-weight feature → prunable
//!   extractor provenance, §5.4).
//!
//! ## Quick start
//!
//! ```
//! use helix_core::prelude::*;
//! use helix_data::{FieldValue, Record, RecordBatch, Schema, Scalar, Value};
//!
//! // A two-node workflow: generate numbers, reduce to their mean.
//! let mut wf = Workflow::new("demo");
//! let data = wf.source("data", 1, |_ctx| {
//!     let schema = Schema::new(["x"]);
//!     let rows = (0..10)
//!         .map(|i| Record::train(vec![FieldValue::Int(i)]))
//!         .collect();
//!     Ok(Value::records(RecordBatch::new(schema, rows)?))
//! });
//! let mean = wf.reduce("mean", data, 1, |v, _ctx| {
//!     let batch = v.as_collection()?.as_records()?;
//!     let sum: f64 = batch.rows.iter().filter_map(|r| r.values[0].as_f64()).sum();
//!     Ok(Value::Scalar(Scalar::F64(sum / batch.len() as f64)))
//! });
//! wf.output(mean);
//!
//! let mut session = Session::new(SessionConfig::in_memory()).unwrap();
//! let report = session.run(&wf).unwrap();
//! let out = report.output_scalar("mean").unwrap();
//! assert_eq!(out.as_f64(), Some(4.5));
//! ```

pub mod driver;
pub mod dsl;
pub mod engine;
pub mod materialize;
pub mod microbatch;
pub mod operator;
pub mod ops;
pub mod pipeline;
pub mod plan;
pub mod prune;
pub mod session;
pub mod track;

/// Convenient re-exports for workflow authors.
pub mod prelude {
    pub use crate::dsl::{DcHandle, ModelHandle, ScalarHandle, Workflow};
    pub use crate::materialize::MatStrategy;
    pub use crate::session::{IterationReport, ReuseScope, Session, SessionConfig, SessionHandles};
    pub use helix_exec::Phase;
}

pub use driver::{drive_overlapped, speculate_budgeted, SessionDriver, Step};
pub use dsl::Workflow;
pub use materialize::MatStrategy;
pub use microbatch::{execute_streamed, partition_bounds, StreamLabels, StreamReport};
pub use operator::{Operator, PartitionSpec, ProvenanceInputs, SeededOperator};
pub use pipeline::{speculate, BackgroundWriter, Prefetcher, SpeculationInputs, SpeculativePlan};
pub use session::{
    IterationReport, ReuseScope, Session, SessionConfig, SessionHandles, DEFAULT_SEED,
};
pub use track::ExecEnv;
