//! The execution engine (paper §2.1 "Execution Engine", §5.3, §5.4).
//!
//! Executes an OEP-planned iteration in deterministic topological order:
//!
//! * `Load` nodes read their artifact from the catalog (bandwidth-
//!   throttled), `Compute` nodes run their operator on cached parent
//!   values, `Prune` nodes are skipped entirely;
//! * every node's wall time is measured — these are the `c_i`/`l_i`
//!   statistics the next iteration's optimizer consumes;
//! * the moment a node goes *out of scope* (its last compute-state child
//!   finished), the engine makes the streaming OPT-MAT-PLAN decision
//!   (Algorithm 2) and then eagerly evicts the value from cache
//!   (Constraint 3 + §5.4 Cache Pruning);
//! * workflow outputs are captured for the caller and — under any policy
//!   but `Never` — materialized as mandatory outputs (Figure 3's "drum"
//!   nodes).

use crate::dsl::Workflow;
use crate::materialize::{cumulative_run_time, should_materialize, MatStrategy};
use helix_common::hash::Signature;
use helix_common::timing::{timed, Nanos};
use helix_common::{HelixError, Result};
use helix_data::{ByteSized, Value};
use helix_exec::{
    CachePolicy, IterationMetrics, MemoryTracker, NodeRun, RunState, ValueCache, WorkerPool,
};
use helix_flow::oep::State;
use helix_flow::NodeId;
use helix_storage::MaterializationCatalog;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything the engine needs for one iteration.
pub struct EngineParams<'a> {
    /// The workflow to execute.
    pub wf: &'a Workflow,
    /// OEP state per node.
    pub states: &'a [State],
    /// Storage signatures per node (post volatile-nonce refresh).
    pub sigs: &'a [Signature],
    /// The materialization catalog.
    pub catalog: &'a MaterializationCatalog,
    /// Materialization policy.
    pub strategy: MatStrategy,
    /// Storage budget in bytes (total catalog footprint cap).
    pub budget_bytes: u64,
    /// Worker-pool width for data-parallel operators.
    pub workers: usize,
    /// Cache eviction policy.
    pub cache_policy: CachePolicy,
    /// Iteration number (for catalog bookkeeping).
    pub iteration: u64,
    /// Session seed (mixed with node signatures for per-node RNG streams).
    pub seed: u64,
}

/// What an iteration produced.
pub struct ExecOutcome {
    /// Aggregated metrics (feeds Figures 5, 6, 8, 9, 10).
    pub metrics: IterationMetrics,
    /// Output values by node name.
    pub outputs: HashMap<String, Arc<Value>>,
    /// Measured compute times by signature (feeds the next OEP).
    pub compute_times: Vec<(Signature, Nanos)>,
}

/// Run one planned iteration.
pub fn execute(params: EngineParams<'_>) -> Result<ExecOutcome> {
    let EngineParams {
        wf,
        states,
        sigs,
        catalog,
        strategy,
        budget_bytes,
        workers,
        cache_policy,
        iteration,
        seed,
    } = params;
    let dag = wf.dag();
    let n = dag.len();
    assert_eq!(states.len(), n);
    assert_eq!(sigs.len(), n);

    let pool = WorkerPool::new(workers);
    let mut cache = ValueCache::new(cache_policy);
    let mut memory = MemoryTracker::new();
    let mut outputs = HashMap::new();
    let mut compute_times = Vec::new();
    let mut incurred: Vec<Nanos> = vec![0; n];
    let mut runs: Vec<Option<NodeRun>> = (0..n).map(|_| None).collect();

    // A node is out of scope once all of its compute-state children have
    // finished (loaded/pruned children never read the in-memory value).
    let mut pending: Vec<usize> = (0..n)
        .map(|i| {
            dag.children(NodeId(i as u32))
                .iter()
                .filter(|c| states[c.ix()] == State::Compute)
                .count()
        })
        .collect();
    let mut done = vec![false; n];

    let order = dag.topo_order()?;
    for id in order {
        let i = id.ix();
        let spec = dag.payload(id);
        match states[i] {
            State::Prune => {
                runs[i] = Some(NodeRun {
                    node: id.0,
                    name: spec.name.clone(),
                    phase: spec.phase,
                    state: RunState::Pruned,
                    run_nanos: 0,
                    materialize_nanos: 0,
                    materialized_bytes: 0,
                    output_bytes: 0,
                });
            }
            State::Load => {
                let (value, load_nanos) = catalog.load(sigs[i])?;
                let value = Arc::new(value);
                incurred[i] = load_nanos;
                runs[i] = Some(NodeRun {
                    node: id.0,
                    name: spec.name.clone(),
                    phase: spec.phase,
                    state: RunState::Loaded,
                    run_nanos: load_nanos,
                    materialize_nanos: 0,
                    materialized_bytes: 0,
                    output_bytes: value.byte_size(),
                });
                if spec.is_output {
                    outputs.insert(spec.name.clone(), Arc::clone(&value));
                }
                cache.put(id.0, value);
                memory.record(cache.resident_bytes());
            }
            State::Compute => {
                let inputs: Vec<Arc<Value>> = dag
                    .parents(id)
                    .iter()
                    .map(|p| {
                        cache.get(p.0).ok_or_else(|| {
                            HelixError::exec(
                                &spec.name,
                                format!(
                                    "input `{}` missing from cache (premature eviction?)",
                                    dag.payload(*p).name
                                ),
                            )
                        })
                    })
                    .collect::<Result<_>>()?;
                let ctx = crate::operator::ExecContext {
                    pool,
                    seed: seed ^ (sigs[i].0 as u64) ^ ((sigs[i].0 >> 64) as u64),
                };
                let (result, run_nanos) = timed(|| spec.operator.execute(&inputs, &ctx));
                let value = Arc::new(result?);
                incurred[i] = run_nanos;
                compute_times.push((sigs[i], run_nanos));
                runs[i] = Some(NodeRun {
                    node: id.0,
                    name: spec.name.clone(),
                    phase: spec.phase,
                    state: RunState::Computed,
                    run_nanos,
                    materialize_nanos: 0,
                    materialized_bytes: 0,
                    output_bytes: value.byte_size(),
                });
                if spec.is_output {
                    outputs.insert(spec.name.clone(), Arc::clone(&value));
                }
                cache.put(id.0, value);
                memory.record(cache.resident_bytes());
            }
        }
        done[i] = true;

        // Out-of-scope sweep: this node (if it has no compute children) and
        // any parent whose last compute child was this node.
        if states[i] == State::Compute {
            for p in dag.parents(id) {
                pending[p.ix()] -= 1;
            }
        }
        let mut to_finalize: Vec<NodeId> = Vec::new();
        if pending[i] == 0 && states[i] != State::Prune {
            to_finalize.push(id);
        }
        for p in dag.parents(id) {
            if done[p.ix()] && pending[p.ix()] == 0 && states[p.ix()] != State::Prune {
                to_finalize.push(*p);
            }
        }
        for node in to_finalize {
            finalize_node(
                wf,
                node,
                states,
                sigs,
                catalog,
                strategy,
                budget_bytes,
                iteration,
                &incurred,
                &mut cache,
                &mut runs,
            )?;
            memory.record(cache.resident_bytes());
        }
    }

    debug_assert!(
        (0..n).all(|i| states[i] == State::Prune || !cache.contains(i as u32)),
        "every non-pruned node must have been finalized and evicted"
    );

    let mut metrics = IterationMetrics::new(iteration);
    for run in runs.into_iter().flatten() {
        metrics.record(run);
    }
    metrics.peak_memory_bytes = memory.peak_bytes();
    metrics.avg_memory_bytes = memory.avg_bytes();
    metrics.storage_bytes = catalog.total_bytes();
    Ok(ExecOutcome { metrics, outputs, compute_times })
}

/// Constraint 3: an out-of-scope node is either materialized immediately
/// or dropped from cache.
#[allow(clippy::too_many_arguments)]
fn finalize_node(
    wf: &Workflow,
    node: NodeId,
    states: &[State],
    sigs: &[Signature],
    catalog: &MaterializationCatalog,
    strategy: MatStrategy,
    budget_bytes: u64,
    iteration: u64,
    incurred: &[Nanos],
    cache: &mut ValueCache,
    runs: &mut [Option<NodeRun>],
) -> Result<()> {
    let i = node.ix();
    if !cache.contains(node.0) {
        return Ok(()); // already finalized via another child
    }
    let spec = wf.dag().payload(node);
    // Only computed values are candidates: loaded ones are already on disk.
    if states[i] == State::Compute && !catalog.contains(sigs[i]) {
        let value = cache.get(node.0).expect("checked above");
        let size = value.byte_size();
        let budget_remaining = budget_bytes.saturating_sub(catalog.total_bytes());
        let mandatory = spec.is_output && strategy != MatStrategy::Never;
        let elective = should_materialize(
            strategy,
            cumulative_run_time(wf.dag(), incurred, node),
            catalog.disk().estimate_load_nanos(size),
            size,
            budget_remaining,
        );
        if mandatory || elective {
            let (bytes, write_nanos) =
                catalog.store(sigs[i], &spec.name, iteration, &value)?;
            if let Some(run) = runs[i].as_mut() {
                run.materialize_nanos = write_nanos;
                run.materialized_bytes = bytes;
            }
        }
    }
    cache.evict(node.0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::chain_signatures;
    use helix_data::Scalar;
    use helix_exec::RunState;
    use helix_storage::DiskProfile;

    fn chain_wf() -> Workflow {
        let mut wf = Workflow::new("e");
        let a = wf.source("a", 1, |_| Ok(Value::Scalar(Scalar::I64(5))));
        let b = wf.reduce("b", a, 1, |v, _| {
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x * 2.0)))
        });
        let c = wf.reduce("c", b, 1, |v, _| {
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x + 1.0)))
        });
        wf.output(c);
        wf
    }

    fn run_all_compute(
        wf: &Workflow,
        catalog: &MaterializationCatalog,
        strategy: MatStrategy,
    ) -> ExecOutcome {
        let sigs = chain_signatures(wf, &HashMap::new());
        let states = vec![State::Compute; wf.len()];
        execute(EngineParams {
            wf,
            states: &states,
            sigs: &sigs,
            catalog,
            strategy,
            budget_bytes: u64::MAX,
            workers: 1,
            cache_policy: CachePolicy::Eager,
            iteration: 0,
            seed: 7,
        })
        .unwrap()
    }

    #[test]
    fn computes_chain_and_captures_output() {
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let outcome = run_all_compute(&chain_wf(), &catalog, MatStrategy::Opt);
        let out = outcome.outputs.get("c").unwrap();
        assert_eq!(out.as_scalar().unwrap().as_f64(), Some(11.0));
        assert_eq!(outcome.metrics.computed, 3);
        assert_eq!(outcome.compute_times.len(), 3);
    }

    #[test]
    fn outputs_are_mandatorily_materialized_except_under_never() {
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let wf = chain_wf();
        let sigs = chain_signatures(&wf, &HashMap::new());
        let c = wf.node_by_name("c").unwrap();
        run_all_compute(&wf, &catalog, MatStrategy::Opt);
        assert!(catalog.contains(sigs[c.ix()]), "output must be stored");

        let catalog2 = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        run_all_compute(&wf, &catalog2, MatStrategy::Never);
        assert!(catalog2.is_empty(), "NM writes nothing at all");
    }

    #[test]
    fn always_strategy_materializes_everything() {
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let outcome = run_all_compute(&chain_wf(), &catalog, MatStrategy::Always);
        assert_eq!(catalog.len(), 3);
        assert!(outcome.metrics.materialized_bytes > 0);
        assert_eq!(outcome.metrics.storage_bytes, catalog.total_bytes());
    }

    #[test]
    fn load_state_reads_from_catalog() {
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let wf = chain_wf();
        let sigs = chain_signatures(&wf, &HashMap::new());
        run_all_compute(&wf, &catalog, MatStrategy::Always);

        // Second run: load the output, prune the rest.
        let states = vec![State::Prune, State::Prune, State::Load];
        let outcome = execute(EngineParams {
            wf: &wf,
            states: &states,
            sigs: &sigs,
            catalog: &catalog,
            strategy: MatStrategy::Opt,
            budget_bytes: u64::MAX,
            workers: 1,
            cache_policy: CachePolicy::Eager,
            iteration: 1,
            seed: 7,
        })
        .unwrap();
        assert_eq!(outcome.outputs["c"].as_scalar().unwrap().as_f64(), Some(11.0));
        assert_eq!(outcome.metrics.loaded, 1);
        assert_eq!(outcome.metrics.pruned, 2);
        assert_eq!(outcome.metrics.computed, 0);
        assert!(outcome.compute_times.is_empty());
        let run_states: Vec<RunState> =
            outcome.metrics.node_runs.iter().map(|r| r.state).collect();
        assert_eq!(run_states, vec![RunState::Pruned, RunState::Pruned, RunState::Loaded]);
    }

    #[test]
    fn budget_blocks_elective_materialization() {
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let wf = chain_wf();
        let sigs = chain_signatures(&wf, &HashMap::new());
        let states = vec![State::Compute; wf.len()];
        let outcome = execute(EngineParams {
            wf: &wf,
            states: &states,
            sigs: &sigs,
            catalog: &catalog,
            strategy: MatStrategy::Opt,
            budget_bytes: 0, // nothing elective fits
            workers: 1,
            cache_policy: CachePolicy::Eager,
            iteration: 0,
            seed: 7,
        })
        .unwrap();
        // Only the mandatory output may be present.
        assert!(catalog.len() <= 1);
        assert!(outcome.outputs.contains_key("c"));
    }

    #[test]
    fn compute_with_missing_parent_value_errors() {
        // Deliberately infeasible states (parent pruned, child computed):
        // the engine must fail loudly rather than silently recompute.
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let wf = chain_wf();
        let sigs = chain_signatures(&wf, &HashMap::new());
        let states = vec![State::Prune, State::Compute, State::Compute];
        let err = execute(EngineParams {
            wf: &wf,
            states: &states,
            sigs: &sigs,
            catalog: &catalog,
            strategy: MatStrategy::Opt,
            budget_bytes: u64::MAX,
            workers: 1,
            cache_policy: CachePolicy::Eager,
            iteration: 0,
            seed: 7,
        });
        assert!(err.is_err());
    }
}
