//! The execution engine (paper §2.1 "Execution Engine", §5.3, §5.4) —
//! frontier-scheduled and multi-threaded.
//!
//! The paper's engine ran each iteration serially in topological order;
//! this one executes the same plan with *intra-iteration parallelism*:
//! all `Compute`/`Load` nodes whose parents have finished form the ready
//! frontier ([`helix_flow::dag::Frontier`]) and are dispatched together
//! onto [`WorkerPool`] worker threads, overlapping independent branches
//! and hiding `Load` I/O behind `Compute` work. With `workers == 1` the
//! scheduler runs inline on the caller thread — the serial baseline pays
//! no thread or channel overhead.
//!
//! Parallel execution preserves the paper's semantics *exactly*:
//!
//! * **State legality (Constraint 2)** is the planner's product; the
//!   engine executes states verbatim and still fails loudly when a
//!   `Compute` node's parent value is missing.
//! * **Determinism**: per-node RNG seeds remain `session seed ⊕ node
//!   signature` — independent of scheduling — so outputs are
//!   byte-identical to a serial run for any worker count.
//! * **Streaming OPT-MAT-PLAN (Algorithm 2)**: materialization decisions
//!   depend on catalog byte totals, so commit *order* matters. The engine
//!   precomputes the exact finalize sequence the serial engine would
//!   produce (a pure function of DAG + states, not of timing) and commits
//!   out-of-scope decisions strictly in that order, as nodes become
//!   eligible. Decisions are therefore identical to serial execution.
//! * **Eager cache eviction (Constraint 3 + §5.4 Cache Pruning)**: a node
//!   is evicted the moment its finalize decision commits, which is never
//!   before its last compute-state child finished.
//! * **Failure parity**: finalize commits wait for the completed topo
//!   *prefix*, so an iteration that errors leaves exactly the catalog a
//!   serial run would, and the error reported is the earliest one in
//!   topological order — at any worker count.
//!
//! The one carve-out is the Spark-style LRU ablation baseline
//! (`CachePolicy::Lru`): budget-driven eviction depends on access
//! recency, which is inherently timing-dependent under concurrency, so
//! LRU iterations always run on the inline serial driver.
//!
//! Every node's wall time is still measured — the `c_i`/`l_i` statistics
//! the next iteration's optimizer consumes.

use crate::dsl::Workflow;
use crate::materialize::{cumulative_run_time, should_materialize_stable, MatStrategy};
use crate::pipeline::{BackgroundWriter, PrefetchTake, Prefetcher};
use helix_common::hash::Signature;
use helix_common::timing::{duration_to_nanos, timed, Nanos};
use helix_common::{HelixError, Result};
use helix_data::{ByteSized, Value};
use helix_exec::{
    interval_union_nanos, CachePolicy, CoreBudget, IterationMetrics, NodeRun, RunState,
    SharedMemoryTracker, SharedValueCache, WorkerPool,
};
use helix_flow::oep::State;
use helix_flow::{Dag, NodeId};
use helix_storage::MaterializationCatalog;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Everything the engine needs for one iteration.
pub struct EngineParams<'a> {
    /// The workflow to execute.
    pub wf: &'a Workflow,
    /// OEP state per node.
    pub states: &'a [State],
    /// Storage signatures per node (post volatile-nonce refresh).
    pub sigs: &'a [Signature],
    /// The materialization catalog (possibly shared with other tenants).
    pub catalog: &'a MaterializationCatalog,
    /// Materialization policy.
    pub strategy: MatStrategy,
    /// Storage budget in bytes. For a solo session this caps the whole
    /// catalog footprint; for a tenant session it is the tenant's quota,
    /// checked against [`MaterializationCatalog::used_bytes_for`].
    pub budget_bytes: u64,
    /// Worker-pool width: node-level scheduling *and* data-parallel
    /// operators (the paper's "cluster size", Figure 7b). Under a core
    /// budget this is a ceiling, not an entitlement.
    pub workers: usize,
    /// Cache eviction policy.
    pub cache_policy: CachePolicy,
    /// Iteration number (for catalog bookkeeping).
    pub iteration: u64,
    /// Session seed (mixed with node signatures for per-node RNG streams).
    pub seed: u64,
    /// Owner label for catalog accounting and hit attribution
    /// ([`helix_storage::catalog::SOLO_OWNER`] for solo sessions).
    pub tenant: &'a str,
    /// Shared core-token budget; `None` = unconstrained (solo semantics).
    pub core_budget: Option<&'a Arc<CoreBudget>>,
    /// Previous iterations' elective Algorithm-2 decisions per signature
    /// (the hysteresis memory; empty map = no history).
    pub prev_elective: &'a HashMap<Signature, bool>,
    /// Dead-band fraction for elective decisions (0 = paper-strict).
    pub hysteresis: f64,
    /// Enable the pipelined lanes (prefetched loads; staged background
    /// writes when `writer` is present). Forced off for the LRU ablation
    /// baseline, whose eviction is timing-coupled. Outputs, catalog
    /// contents, and plan-relevant metrics stay byte-identical either
    /// way — pipelining moves I/O off the critical path, never changes
    /// decisions.
    pub pipeline: bool,
    /// The session's background materialization writer (the write lane).
    /// `None` or `pipeline == false` keeps the serial inline writes.
    pub writer: Option<&'a BackgroundWriter>,
    /// Micro-batch streaming: partitionable operators execute as a
    /// stream of `microbatch_rows`-row partitions through overlapped
    /// load/compute/commit lanes (`crate::microbatch`). 0 disables.
    /// Byte-identical to whole-frame execution — an execution detail,
    /// like `workers`.
    pub microbatch_rows: usize,
}

/// What an iteration produced.
pub struct ExecOutcome {
    /// Aggregated metrics (feeds Figures 5, 6, 8, 9, 10).
    pub metrics: IterationMetrics,
    /// Output values by node name.
    pub outputs: HashMap<String, Arc<Value>>,
    /// Measured compute times by signature (feeds the next OEP),
    /// in node-id order regardless of completion order.
    pub compute_times: Vec<(Signature, Nanos)>,
    /// Elective Algorithm-2 decisions made this iteration, for the
    /// session's hysteresis memory (empty under AM/NM).
    pub elective_decisions: Vec<(Signature, bool)>,
}

/// What one worker reports back for one executed node.
struct Completion {
    node: usize,
    result: Result<NodeSuccess>,
}

struct NodeSuccess {
    value: Arc<Value>,
    run_nanos: Nanos,
    output_bytes: u64,
    state: RunState,
    /// Load was served by another tenant's artifact.
    cross: bool,
    /// Epoch-relative wall span of a lazily executed load (prefetched
    /// loads record their spans in the prefetcher instead).
    load_span: Option<(Nanos, Nanos)>,
}

/// Run one planned iteration.
pub fn execute(params: EngineParams<'_>) -> Result<ExecOutcome> {
    let EngineParams {
        wf,
        states,
        sigs,
        catalog,
        strategy,
        budget_bytes,
        workers,
        cache_policy,
        iteration,
        seed,
        tenant,
        core_budget,
        prev_elective,
        hysteresis,
        pipeline,
        writer,
        microbatch_rows,
    } = params;
    let dag = wf.dag();
    let n = dag.len();
    assert_eq!(states.len(), n);
    assert_eq!(sigs.len(), n);

    let order = dag.topo_order()?;
    // The pipelined lanes are off for the LRU ablation (its eviction is
    // timing-coupled; see `dispatch_width` below for the same reason).
    let pipelined = pipeline && !matches!(cache_policy, CachePolicy::Lru { .. });
    let epoch = Instant::now();
    // Load lane: fetch every plan-time-claimed Load concurrently from
    // iteration start, instead of lazily when the frontier reaches it —
    // a Load needs no parent values, only the DAG made it wait.
    let load_jobs: Vec<(NodeId, Signature)> = order
        .iter()
        .filter(|id| states[id.ix()] == State::Load)
        .map(|id| (*id, sigs[id.ix()]))
        .collect();
    let prefetcher = (pipelined && !load_jobs.is_empty())
        .then(|| Prefetcher::new(catalog, tenant, epoch, load_jobs));
    // Data-parallel operators get the full nominal width, but under a
    // core budget their extra threads must be leased from the same tokens
    // the dispatch layer uses — node- and data-level parallelism split
    // the machine instead of multiplying into `workers²` threads.
    let pool = match core_budget {
        Some(budget) => WorkerPool::budgeted(workers, Arc::clone(budget)),
        None => WorkerPool::new(workers),
    };
    let cache = SharedValueCache::new(cache_policy);
    let memory = SharedMemoryTracker::new();

    // Any set of simultaneously runnable nodes is an antichain, so the
    // DAG's width caps useful scheduler threads: a pure chain runs
    // inline, a diamond gets two threads, regardless of the requested
    // width. Level width is a cheap proxy for the true (Dilworth) width —
    // exact on layered workflow DAGs, at worst slightly under-provisioned
    // (jobs then queue; never a deadlock). Data-parallel operators still
    // see the full `workers` through `ExecContext::pool`.
    //
    // The LRU ablation baseline always runs inline: budget-driven LRU
    // eviction depends on access recency, which concurrent workers would
    // make timing-dependent — it could even evict a parent value an
    // unscheduled child still needs. Eager (HELIX) scope-driven eviction
    // has no such coupling and parallelizes freely.
    let dispatch_width = if matches!(cache_policy, CachePolicy::Lru { .. }) {
        1
    } else {
        workers.min(level_width(dag)?)
    };

    let runner = NodeRunner {
        wf,
        states,
        sigs,
        catalog,
        cache: &cache,
        memory: &memory,
        pool,
        seed,
        tenant,
        prefetch: prefetcher.as_ref(),
        epoch,
        iteration,
        workers,
        core_budget,
        microbatch_rows,
    };
    let mut coord = Coordinator {
        wf,
        states,
        sigs,
        catalog,
        strategy,
        budget_bytes,
        iteration,
        tenant,
        prev_elective,
        hysteresis,
        writer: if pipelined { writer } else { None },
        prefetch: prefetcher.as_ref(),
        load_spans: Vec::new(),
        protected: sigs.iter().copied().collect(),
        elective_decisions: Vec::new(),
        cross_loads: 0,
        cache: &cache,
        memory: &memory,
        topo_pos: topo_positions(&order, n),
        done: vec![false; n],
        pending: compute_child_counts(dag, states),
        incurred: vec![0; n],
        runs: (0..n).map(|_| None).collect(),
        outputs: HashMap::new(),
        compute_nanos: vec![None; n],
        finalize_seq: serial_finalize_sequence(dag, states, &order),
        seq_cursor: 0,
        finalized: vec![false; n],
        order,
        done_prefix: 0,
        first_error: None,
    };

    let run_driver = |coord: &mut Coordinator<'_>| {
        if dispatch_width <= 1 {
            run_inline(dag, &runner, coord);
        } else {
            let dispatch_pool = match core_budget {
                Some(budget) => WorkerPool::budgeted(dispatch_width, Arc::clone(budget)),
                None => WorkerPool::new(dispatch_width),
            };
            run_parallel(dag, &runner, coord, &dispatch_pool);
        }
    };
    match prefetcher.as_ref() {
        Some(p) => std::thread::scope(|scope| {
            // Lane count respects the core budget: the first lane rides
            // the iteration's own token (loads are not pure sleep — the
            // decode is real CPU), extras need leased tokens held for
            // the lanes' lifetime. Unbudgeted sessions get the full
            // complement.
            let extra_lease = core_budget.map(|budget| budget.try_acquire(p.lanes() - 1));
            let lane_count = match &extra_lease {
                Some(lease) => 1 + lease.tokens(),
                None => p.lanes(),
            };
            for _ in 0..lane_count {
                scope.spawn(|| p.run_lane());
            }
            run_driver(&mut coord);
            // Normal completion: every load was fetched and taken, halt
            // is a no-op. Error path: stop the lanes from *starting*
            // loads the serial engine would never have reached —
            // in-flight fetches still finish (their takers may be
            // waiting), so a failed iteration can touch a few more load
            // statistics than serial; timing/stat metadata is outside
            // the byte-identity contract.
            p.halt();
            drop(extra_lease);
        }),
        None => run_driver(&mut coord),
    }

    if let Some((_, err)) = coord.first_error.take() {
        return Err(err);
    }
    coord.commit_finalizes();
    debug_assert!(coord.first_error.is_none(), "finalize failed after clean execution");
    debug_assert_eq!(coord.seq_cursor, coord.finalize_seq.len());
    debug_assert!(
        (0..n).all(|i| states[i] == State::Prune || !cache.contains(i as u32)),
        "every non-pruned node must have been finalized and evicted"
    );

    let mut metrics = IterationMetrics::new(iteration);
    let mut load_spans = std::mem::take(&mut coord.load_spans);
    if let Some(p) = prefetcher.as_ref() {
        load_spans.extend(p.spans());
    }
    metrics.load_cpu_nanos = load_spans.iter().map(|(s, e)| e.saturating_sub(*s)).sum();
    metrics.load_nanos = interval_union_nanos(&load_spans);
    for run in coord.runs.into_iter().flatten() {
        metrics.record(run);
    }
    metrics.cross_loaded = coord.cross_loads;
    metrics.peak_memory_bytes = memory.peak_bytes();
    metrics.avg_memory_bytes = memory.avg_bytes();
    metrics.storage_bytes = catalog.total_bytes();
    let compute_times =
        (0..n).filter_map(|i| coord.compute_nanos[i].map(|nanos| (sigs[i], nanos))).collect();
    Ok(ExecOutcome {
        metrics,
        outputs: coord.outputs,
        compute_times,
        elective_decisions: coord.elective_decisions,
    })
}

/// Serial driver: pop the minimum-id ready node and run it inline — the
/// exact order of the paper's topological loop (min-id Kahn), with zero
/// thread or channel overhead.
fn run_inline(
    dag: &Dag<crate::operator::NodeSpec>,
    runner: &NodeRunner<'_>,
    coord: &mut Coordinator<'_>,
) {
    let mut frontier = dag.frontier();
    while let Some(node) = frontier.pop_min() {
        if coord.states[node.ix()] == State::Prune {
            coord.record_prune(node);
        } else {
            let completion = runner.run_node(node);
            coord.on_completion(completion);
            if coord.first_error.is_some() {
                return;
            }
        }
        frontier.complete(node);
        coord.commit_finalizes();
        if coord.first_error.is_some() {
            return;
        }
    }
}

/// Parallel driver: keep every ready node in flight on the pool, retire
/// completions as they arrive, commit finalize decisions in serial order.
fn run_parallel(
    dag: &Dag<crate::operator::NodeSpec>,
    runner: &NodeRunner<'_>,
    coord: &mut Coordinator<'_>,
    pool: &WorkerPool,
) {
    pool.with_executor(
        |node: NodeId| runner.run_node(node),
        |executor| {
            let mut frontier = dag.frontier();
            let mut in_flight = 0usize;
            loop {
                // Dispatch (or immediately retire) everything ready;
                // retiring a prune node can ready more, which `pop_min`
                // picks up in the same sweep.
                let sweep_span = helix_obs::span(helix_obs::layer::ENGINE, "dispatch")
                    .tenant(runner.tenant)
                    .iteration(runner.iteration);
                let mut dispatched = 0u64;
                while let Some(node) = frontier.pop_min() {
                    // After an error at topo position p, keep dispatching
                    // only nodes *before* p: the serial loop would have
                    // executed all of them before stopping, so the error
                    // finally reported is the earliest-topo-position one —
                    // identical to serial — at any worker count.
                    let error_pos = coord.first_error.as_ref().map(|(pos, _)| *pos);
                    if coord.states[node.ix()] == State::Prune {
                        coord.record_prune(node);
                        frontier.complete(node);
                    } else if error_pos.is_none_or(|pos| coord.topo_pos[node.ix()] < pos) {
                        executor.submit(node);
                        in_flight += 1;
                        dispatched += 1;
                    }
                    // Nodes at or past the error position are dropped; we
                    // only drain what serial would still have run.
                }
                let _ = sweep_span.amount(dispatched);
                if in_flight == 0 {
                    break;
                }
                let completion = executor.recv();
                in_flight -= 1;
                let node = NodeId(completion.node as u32);
                coord.on_completion(completion);
                frontier.complete(node);
                // Unconditional: after an error, events triggered before
                // the error position must still commit for failure parity
                // with serial (commit_finalizes enforces the limit).
                coord.commit_finalizes();
            }
        },
    );
}

/// Width of the widest level antichain (see [`Dag::level_sets`]) — the
/// engine's estimate of how many nodes can be in flight at once.
fn level_width(dag: &Dag<crate::operator::NodeSpec>) -> Result<usize> {
    Ok(dag.level_sets()?.iter().map(Vec::len).max().unwrap_or(0))
}

fn topo_positions(order: &[NodeId], n: usize) -> Vec<usize> {
    let mut pos = vec![0usize; n];
    for (p, id) in order.iter().enumerate() {
        pos[id.ix()] = p;
    }
    pos
}

/// Per-node count of compute-state children: a node is out of scope once
/// all of them have finished (loaded/pruned children never read the
/// in-memory value).
fn compute_child_counts(dag: &Dag<crate::operator::NodeSpec>, states: &[State]) -> Vec<usize> {
    (0..dag.len())
        .map(|i| {
            dag.children(NodeId(i as u32))
                .iter()
                .filter(|c| states[c.ix()] == State::Compute)
                .count()
        })
        .collect()
}

/// The order in which the serial topological loop would make streaming
/// OPT-MAT-PLAN decisions — a pure function of the DAG and states, so the
/// parallel engine can replay it regardless of completion timing.
///
/// Mirrors the serial sweep exactly: after executing the node at each
/// topo position `k`, finalize it if it has no compute children, then any
/// parent whose last compute child it was. Each event carries `k` (its
/// *trigger position*): the parallel engine commits an event only once
/// every node at positions `0..=k` has finished, so a failed iteration
/// cannot write artifacts a serial run (which stops at the first error)
/// would never have written. Duplicate entries are harmless (the commit
/// step skips already-finalized nodes), matching the serial engine's
/// `cache.contains` guard.
fn serial_finalize_sequence(
    dag: &Dag<crate::operator::NodeSpec>,
    states: &[State],
    order: &[NodeId],
) -> Vec<(NodeId, usize)> {
    let n = dag.len();
    let mut pending = compute_child_counts(dag, states);
    let mut done = vec![false; n];
    let mut seq = Vec::new();
    for (k, &id) in order.iter().enumerate() {
        let i = id.ix();
        done[i] = true;
        if states[i] == State::Compute {
            for p in dag.parents(id) {
                pending[p.ix()] -= 1;
            }
        }
        if pending[i] == 0 && states[i] != State::Prune {
            seq.push((id, k));
        }
        for &p in dag.parents(id) {
            if done[p.ix()] && pending[p.ix()] == 0 && states[p.ix()] != State::Prune {
                seq.push((p, k));
            }
        }
    }
    seq
}

/// The worker-side executor: runs one `Load` or `Compute` node against the
/// shared cache/catalog. Shared immutably across worker threads.
struct NodeRunner<'a> {
    wf: &'a Workflow,
    states: &'a [State],
    sigs: &'a [Signature],
    catalog: &'a MaterializationCatalog,
    cache: &'a SharedValueCache,
    memory: &'a SharedMemoryTracker,
    pool: WorkerPool,
    seed: u64,
    tenant: &'a str,
    /// The load lane, when this iteration prefetches.
    prefetch: Option<&'a Prefetcher<'a>>,
    /// Iteration start, for epoch-relative load spans.
    epoch: Instant,
    /// Iteration number, as a trace label only.
    iteration: u64,
    /// Nominal worker width — the compute-lane ceiling for streamed
    /// micro-batch execution (same meaning as for data-parallel maps).
    workers: usize,
    /// Shared core budget, so streamed lanes beyond the first are leased
    /// from the same tokens node- and data-level parallelism use.
    core_budget: Option<&'a Arc<CoreBudget>>,
    /// Partition size for micro-batch streaming; 0 = whole-frame.
    microbatch_rows: usize,
}

impl NodeRunner<'_> {
    fn run_node(&self, id: NodeId) -> Completion {
        Completion { node: id.ix(), result: self.try_run(id) }
    }

    /// Read a load directly from the catalog (the lazy path), capturing
    /// its wall span.
    #[allow(clippy::type_complexity)]
    fn load_direct(&self, i: usize) -> Result<(Value, Nanos, bool, Option<(Nanos, Nanos)>)> {
        let start = duration_to_nanos(self.epoch.elapsed());
        let (value, load_nanos, cross) = self.catalog.load_for(self.sigs[i], self.tenant)?;
        let end = duration_to_nanos(self.epoch.elapsed());
        Ok((value, load_nanos, cross, Some((start, end))))
    }

    fn try_run(&self, id: NodeId) -> Result<NodeSuccess> {
        let i = id.ix();
        let dag = self.wf.dag();
        let spec = dag.payload(id);
        match self.states[i] {
            State::Prune => unreachable!("prune nodes are retired by the coordinator"),
            State::Load => {
                let _span = helix_obs::span(helix_obs::layer::ENGINE, "load")
                    .node(spec.name.as_str())
                    .tenant(self.tenant)
                    .iteration(self.iteration);
                // Prefetched when the load lane is on; the reported cost
                // is the deterministic disk-model time either way, so
                // statistics (and therefore future plans) are identical
                // to a lazy serial load.
                let (value, load_nanos, cross, load_span) = match self.prefetch {
                    Some(p) => match p.take(id) {
                        PrefetchTake::Ready(result) => {
                            let loaded = result?;
                            (loaded.value, loaded.load_nanos, loaded.cross, None)
                        }
                        PrefetchTake::Cancelled => self.load_direct(i)?,
                    },
                    None => self.load_direct(i)?,
                };
                let value = Arc::new(value);
                let output_bytes = value.byte_size();
                self.cache.put(id.0, Arc::clone(&value));
                self.memory.record(self.cache.resident_bytes());
                Ok(NodeSuccess {
                    value,
                    run_nanos: load_nanos,
                    output_bytes,
                    state: RunState::Loaded,
                    cross,
                    load_span,
                })
            }
            State::Compute => {
                let _span = helix_obs::span(helix_obs::layer::ENGINE, "compute")
                    .node(spec.name.as_str())
                    .tenant(self.tenant)
                    .iteration(self.iteration);
                let inputs: Vec<Arc<Value>> = dag
                    .parents(id)
                    .iter()
                    .map(|p| {
                        self.cache.get(p.0).ok_or_else(|| {
                            HelixError::exec(
                                &spec.name,
                                format!(
                                    "input `{}` missing from cache (premature eviction?)",
                                    dag.payload(*p).name
                                ),
                            )
                        })
                    })
                    .collect::<Result<_>>()?;
                let ctx = crate::operator::ExecContext::new(
                    self.pool.clone(),
                    self.seed ^ (self.sigs[i].0 as u64) ^ ((self.sigs[i].0 >> 64) as u64),
                );
                // Micro-batch co-execution: a partitionable operator runs
                // as a partition stream with overlapped load/compute/
                // commit lanes. Byte-identical to whole-frame execution
                // by construction (see `crate::microbatch`), so nothing
                // downstream — signatures, plans, mat decisions — can
                // tell the difference.
                let stream_spec = (self.microbatch_rows > 0)
                    .then(|| spec.operator.partitionable())
                    .flatten()
                    .filter(|ps| {
                        inputs
                            .get(ps.partition_input)
                            .and_then(|v| v.as_collection().ok())
                            .is_some_and(|c| c.len() >= ps.min_rows.max(1))
                    });
                let (result, run_nanos) = match stream_spec {
                    Some(ps) => {
                        let labels = crate::microbatch::StreamLabels {
                            node: spec.name.as_str(),
                            tenant: self.tenant,
                            iteration: self.iteration,
                        };
                        timed(|| {
                            crate::microbatch::execute_streamed(
                                spec.operator.as_ref(),
                                &ps,
                                &inputs,
                                &ctx,
                                self.microbatch_rows,
                                self.workers,
                                self.core_budget.map(|b| b.as_ref()),
                                &labels,
                            )
                            .map(|(value, _report)| value)
                        })
                    }
                    None => timed(|| spec.operator.execute(&inputs, &ctx)),
                };
                // Provenance enforcement: an operator that consumed the
                // seed without declaring SEED would be stored under a
                // seed-independent signature, silently serving one seed's
                // bytes to sessions running another. Fail loudly instead.
                if ctx.seed_was_read()
                    && !spec
                        .operator
                        .byte_affecting_inputs()
                        .contains(crate::operator::ProvenanceInputs::SEED)
                {
                    return Err(HelixError::exec(
                        &spec.name,
                        "operator consumed the context seed/RNG without declaring \
                         ProvenanceInputs::SEED (wrap closure UDFs in SeededOperator); \
                         undeclared seed use would poison cross-seed artifact sharing",
                    ));
                }
                let value = Arc::new(result?);
                let output_bytes = value.byte_size();
                self.cache.put(id.0, Arc::clone(&value));
                self.memory.record(self.cache.resident_bytes());
                Ok(NodeSuccess {
                    value,
                    run_nanos,
                    output_bytes,
                    state: RunState::Computed,
                    cross: false,
                    load_span: None,
                })
            }
        }
    }
}

/// Single-threaded bookkeeping: retirement, metrics, output capture, and
/// the in-order replay of streaming materialization decisions.
struct Coordinator<'a> {
    wf: &'a Workflow,
    states: &'a [State],
    sigs: &'a [Signature],
    catalog: &'a MaterializationCatalog,
    strategy: MatStrategy,
    budget_bytes: u64,
    iteration: u64,
    tenant: &'a str,
    prev_elective: &'a HashMap<Signature, bool>,
    hysteresis: f64,
    /// The write lane: when present, materializations are staged (index
    /// now, file later) instead of written inline.
    writer: Option<&'a BackgroundWriter>,
    /// The load lane, halted on first error so lanes stop fetching loads
    /// serial execution would never have reached.
    prefetch: Option<&'a Prefetcher<'a>>,
    /// Wall spans of lazily executed loads (prefetched spans live in the
    /// prefetcher).
    load_spans: Vec<(Nanos, Nanos)>,
    /// The current plan's signatures: quota eviction must never remove an
    /// artifact this very iteration still intends to load.
    protected: HashSet<Signature>,
    elective_decisions: Vec<(Signature, bool)>,
    cross_loads: usize,
    cache: &'a SharedValueCache,
    memory: &'a SharedMemoryTracker,
    topo_pos: Vec<usize>,
    done: Vec<bool>,
    pending: Vec<usize>,
    incurred: Vec<Nanos>,
    runs: Vec<Option<NodeRun>>,
    outputs: HashMap<String, Arc<Value>>,
    compute_nanos: Vec<Option<Nanos>>,
    finalize_seq: Vec<(NodeId, usize)>,
    seq_cursor: usize,
    finalized: Vec<bool>,
    /// Canonical topo order, for prefix-completion tracking.
    order: Vec<NodeId>,
    /// Number of leading topo positions whose nodes have all finished.
    done_prefix: usize,
    /// Earliest failing node by topo position — matches what the serial
    /// loop would have reported first.
    first_error: Option<(usize, HelixError)>,
}

impl Coordinator<'_> {
    fn record_prune(&mut self, id: NodeId) {
        let i = id.ix();
        let spec = self.wf.dag().payload(id);
        // Prunes do no work; a zero-duration marker keeps the taxonomy
        // complete in traces.
        let _ = helix_obs::span_at(helix_obs::layer::ENGINE, "prune", helix_obs::now_nanos(), 0)
            .node(spec.name.as_str())
            .tenant(self.tenant)
            .iteration(self.iteration);
        self.runs[i] = Some(NodeRun {
            node: id.0,
            name: spec.name.clone(),
            phase: spec.phase,
            state: RunState::Pruned,
            run_nanos: 0,
            materialize_nanos: 0,
            materialized_bytes: 0,
            output_bytes: 0,
        });
        self.done[i] = true;
    }

    fn on_completion(&mut self, completion: Completion) {
        let i = completion.node;
        let id = NodeId(i as u32);
        let spec = self.wf.dag().payload(id);
        match completion.result {
            Ok(success) => {
                self.incurred[i] = success.run_nanos;
                if success.cross {
                    self.cross_loads += 1;
                }
                if let Some(span) = success.load_span {
                    self.load_spans.push(span);
                }
                if success.state == RunState::Computed {
                    self.compute_nanos[i] = Some(success.run_nanos);
                    for p in self.wf.dag().parents(id) {
                        self.pending[p.ix()] -= 1;
                    }
                }
                self.runs[i] = Some(NodeRun {
                    node: id.0,
                    name: spec.name.clone(),
                    phase: spec.phase,
                    state: success.state,
                    run_nanos: success.run_nanos,
                    materialize_nanos: 0,
                    materialized_bytes: 0,
                    output_bytes: success.output_bytes,
                });
                if spec.is_output {
                    self.outputs.insert(spec.name.clone(), success.value);
                }
            }
            Err(err) => {
                let pos = self.topo_pos[i];
                if self.first_error.as_ref().is_none_or(|(p, _)| pos < *p) {
                    self.first_error = Some((pos, err));
                }
                if let Some(p) = self.prefetch {
                    p.halt();
                }
            }
        }
        self.done[i] = true;
    }

    /// Commit pending out-of-scope decisions strictly in the precomputed
    /// serial order. An event triggered at serial topo position `k`
    /// commits only once every node at positions `0..=k` has finished —
    /// exactly when the serial loop would have reached it — so catalog
    /// writes never run ahead of a pending earlier failure. Conversely,
    /// after an error at position `p`, events triggered *before* `p`
    /// still commit (the serial loop had already made them before
    /// stopping), so a failed iteration leaves exactly the catalog a
    /// serial run would.
    fn commit_finalizes(&mut self) {
        while self.done_prefix < self.order.len() && self.done[self.order[self.done_prefix].ix()] {
            self.done_prefix += 1;
        }
        let error_pos = self.first_error.as_ref().map_or(usize::MAX, |(pos, _)| *pos);
        while let Some(&(node, trigger_pos)) = self.finalize_seq.get(self.seq_cursor) {
            let i = node.ix();
            if trigger_pos >= self.done_prefix || trigger_pos >= error_pos {
                break;
            }
            // Implied by the prefix condition: the node and all of its
            // compute children sit at or before the trigger position.
            debug_assert!(self.done[i] && self.pending[i] == 0);
            self.seq_cursor += 1;
            if std::mem::replace(&mut self.finalized[i], true) {
                continue; // duplicate event, same as the serial guard
            }
            if let Err(err) = self.finalize_node(node) {
                let pos = self.topo_pos[i];
                if self.first_error.as_ref().is_none_or(|(p, _)| pos < *p) {
                    self.first_error = Some((pos, err));
                }
                break;
            }
            self.memory.record(self.cache.resident_bytes());
        }
    }

    /// Constraint 3: an out-of-scope node is either materialized
    /// immediately or dropped from cache.
    fn finalize_node(&mut self, node: NodeId) -> Result<()> {
        let i = node.ix();
        if !self.cache.contains(node.0) {
            return Ok(()); // already finalized via another child
        }
        let spec = self.wf.dag().payload(node);
        // Only computed values are candidates: loaded ones are already on
        // disk.
        if self.states[i] == State::Compute && !self.catalog.contains(self.sigs[i]) {
            let value = self.cache.get(node.0).expect("checked above");
            let size = value.byte_size();
            // Budget is per-tenant: a named tenant is charged only for the
            // artifacts *it* stored; the solo owner is charged the whole
            // catalog (identical to the original single-session check).
            let used = self.catalog.used_bytes_for(self.tenant);
            let budget_remaining = self.budget_bytes.saturating_sub(used);
            let mandatory = spec.is_output && self.strategy != MatStrategy::Never;
            let elective = should_materialize_stable(
                self.strategy,
                cumulative_run_time(self.wf.dag(), &self.incurred, node),
                self.catalog.disk().estimate_load_nanos(size),
                size,
                budget_remaining,
                self.prev_elective.get(&self.sigs[i]).copied(),
                self.hysteresis,
            );
            if self.strategy == MatStrategy::Opt {
                self.elective_decisions.push((self.sigs[i], elective));
            }
            if mandatory || elective {
                let _span = helix_obs::span(helix_obs::layer::ENGINE, "materialize")
                    .node(spec.name.as_str())
                    .tenant(self.tenant)
                    .iteration(self.iteration)
                    .amount(size);
                // A mandatory store may overflow the quota: make room by
                // evicting this tenant's own oldest sole-owned artifacts
                // (deterministic order; the current plan is protected).
                if mandatory && size > budget_remaining {
                    self.catalog.evict_owned(
                        self.tenant,
                        size - budget_remaining,
                        &self.protected,
                    )?;
                }
                // Global pressure: with every tenant inside its own
                // quota the *shared* store can still exceed the
                // service's global byte budget (quotas may oversubscribe
                // deliberately, and cross-tenant claims charge the same
                // bytes to several owners). Make room across tenants in
                // retention-score order — sole-owned first, popular
                // (refcount > 1) artifacts retained longest; this plan's
                // signatures and other iterations' pinned loads are
                // never victims.
                if let Some(global) = self.catalog.global_budget() {
                    let projected = self.catalog.total_bytes().saturating_add(size);
                    if projected > global {
                        self.catalog.evict_global(
                            self.tenant,
                            projected - global,
                            &self.protected,
                        )?;
                    }
                }
                // With the write lane on, stage now (index, owners, quota
                // — everything later decisions read) and let the writer
                // land the file off the critical path; the reported write
                // time is the disk model's deterministic target. Without
                // it, the serial inline write.
                let (bytes, write_nanos) = match self.writer {
                    Some(writer) => {
                        let (bytes, modeled, frame) = self.catalog.stage_owned(
                            self.sigs[i],
                            self.tenant,
                            &spec.name,
                            self.iteration,
                            &value,
                        )?;
                        writer.enqueue(self.sigs[i], frame);
                        (bytes, modeled)
                    }
                    None => self.catalog.store_owned(
                        self.sigs[i],
                        self.tenant,
                        &spec.name,
                        self.iteration,
                        &value,
                    )?,
                };
                if let Some(run) = self.runs[i].as_mut() {
                    run.materialize_nanos = write_nanos;
                    run.materialized_bytes = bytes;
                }
            }
        }
        self.cache.evict(node.0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::{chain_signatures, ExecEnv};
    use helix_data::Scalar;
    use helix_exec::RunState;
    use helix_storage::DiskProfile;

    fn chain_wf() -> Workflow {
        let mut wf = Workflow::new("e");
        let a = wf.source("a", 1, |_| Ok(Value::Scalar(Scalar::I64(5))));
        let b = wf.reduce("b", a, 1, |v, _| {
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x * 2.0)))
        });
        let c = wf.reduce("c", b, 1, |v, _| {
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x + 1.0)))
        });
        wf.output(c);
        wf
    }

    /// A diamond with two independent middle branches — the smallest shape
    /// where frontier scheduling can overlap work.
    fn diamond_wf() -> Workflow {
        let mut wf = Workflow::new("diamond");
        let src = wf.source("src", 1, |_| Ok(Value::Scalar(Scalar::F64(3.0))));
        let left = wf.reduce("left", src, 1, |v, _| {
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x * 10.0)))
        });
        let right = wf.reduce("right", src, 1, |v, _| {
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x + 100.0)))
        });
        let join = wf.reduce_many("join", [left, right], 1, |vs, _| {
            let l = vs[0].as_scalar()?.as_f64().unwrap_or(0.0);
            let r = vs[1].as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(l + r)))
        });
        wf.output(join);
        wf
    }

    fn run_all_compute(
        wf: &Workflow,
        catalog: &MaterializationCatalog,
        strategy: MatStrategy,
    ) -> ExecOutcome {
        run_all_compute_with_workers(wf, catalog, strategy, 1)
    }

    fn run_all_compute_with_workers(
        wf: &Workflow,
        catalog: &MaterializationCatalog,
        strategy: MatStrategy,
        workers: usize,
    ) -> ExecOutcome {
        let sigs = chain_signatures(wf, &HashMap::new(), &ExecEnv::new(7));
        let states = vec![State::Compute; wf.len()];
        execute(EngineParams {
            wf,
            states: &states,
            sigs: &sigs,
            catalog,
            strategy,
            budget_bytes: u64::MAX,
            workers,
            cache_policy: CachePolicy::Eager,
            iteration: 0,
            seed: 7,
            tenant: "",
            core_budget: None,
            prev_elective: &HashMap::new(),
            hysteresis: 0.0,
            pipeline: false,
            writer: None,
            microbatch_rows: 0,
        })
        .unwrap()
    }

    #[test]
    fn computes_chain_and_captures_output() {
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let outcome = run_all_compute(&chain_wf(), &catalog, MatStrategy::Opt);
        let out = outcome.outputs.get("c").unwrap();
        assert_eq!(out.as_scalar().unwrap().as_f64(), Some(11.0));
        assert_eq!(outcome.metrics.computed, 3);
        assert_eq!(outcome.compute_times.len(), 3);
    }

    #[test]
    fn outputs_are_mandatorily_materialized_except_under_never() {
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let wf = chain_wf();
        let sigs = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(7));
        let c = wf.node_by_name("c").unwrap();
        run_all_compute(&wf, &catalog, MatStrategy::Opt);
        assert!(catalog.contains(sigs[c.ix()]), "output must be stored");

        let catalog2 = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        run_all_compute(&wf, &catalog2, MatStrategy::Never);
        assert!(catalog2.is_empty(), "NM writes nothing at all");
    }

    #[test]
    fn always_strategy_materializes_everything() {
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let outcome = run_all_compute(&chain_wf(), &catalog, MatStrategy::Always);
        assert_eq!(catalog.len(), 3);
        assert!(outcome.metrics.materialized_bytes > 0);
        assert_eq!(outcome.metrics.storage_bytes, catalog.total_bytes());
    }

    #[test]
    fn load_state_reads_from_catalog() {
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let wf = chain_wf();
        let sigs = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(7));
        run_all_compute(&wf, &catalog, MatStrategy::Always);

        // Second run: load the output, prune the rest.
        let states = vec![State::Prune, State::Prune, State::Load];
        let outcome = execute(EngineParams {
            wf: &wf,
            states: &states,
            sigs: &sigs,
            catalog: &catalog,
            strategy: MatStrategy::Opt,
            budget_bytes: u64::MAX,
            workers: 1,
            cache_policy: CachePolicy::Eager,
            iteration: 1,
            seed: 7,
            tenant: "",
            core_budget: None,
            prev_elective: &HashMap::new(),
            hysteresis: 0.0,
            pipeline: false,
            writer: None,
            microbatch_rows: 0,
        })
        .unwrap();
        assert_eq!(outcome.outputs["c"].as_scalar().unwrap().as_f64(), Some(11.0));
        assert_eq!(outcome.metrics.loaded, 1);
        assert_eq!(outcome.metrics.pruned, 2);
        assert_eq!(outcome.metrics.computed, 0);
        assert!(outcome.compute_times.is_empty());
        let run_states: Vec<RunState> = outcome.metrics.node_runs.iter().map(|r| r.state).collect();
        assert_eq!(run_states, vec![RunState::Pruned, RunState::Pruned, RunState::Loaded]);
    }

    #[test]
    fn budget_blocks_elective_materialization() {
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let wf = chain_wf();
        let sigs = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(7));
        let states = vec![State::Compute; wf.len()];
        let outcome = execute(EngineParams {
            wf: &wf,
            states: &states,
            sigs: &sigs,
            catalog: &catalog,
            strategy: MatStrategy::Opt,
            budget_bytes: 0, // nothing elective fits
            workers: 1,
            cache_policy: CachePolicy::Eager,
            iteration: 0,
            seed: 7,
            tenant: "",
            core_budget: None,
            prev_elective: &HashMap::new(),
            hysteresis: 0.0,
            pipeline: false,
            writer: None,
            microbatch_rows: 0,
        })
        .unwrap();
        // Only the mandatory output may be present.
        assert!(catalog.len() <= 1);
        assert!(outcome.outputs.contains_key("c"));
    }

    #[test]
    fn compute_with_missing_parent_value_errors() {
        // Deliberately infeasible states (parent pruned, child computed):
        // the engine must fail loudly rather than silently recompute.
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let wf = chain_wf();
        let sigs = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(7));
        let states = vec![State::Prune, State::Compute, State::Compute];
        for workers in [1, 4] {
            let err = execute(EngineParams {
                wf: &wf,
                states: &states,
                sigs: &sigs,
                catalog: &catalog,
                strategy: MatStrategy::Opt,
                budget_bytes: u64::MAX,
                workers,
                cache_policy: CachePolicy::Eager,
                iteration: 0,
                seed: 7,
                tenant: "",
                core_budget: None,
                prev_elective: &HashMap::new(),
                hysteresis: 0.0,
                pipeline: false,
                writer: None,
                microbatch_rows: 0,
            });
            assert!(err.is_err(), "workers={workers}");
        }
    }

    #[test]
    fn undeclared_seed_use_fails_loudly_and_seeded_nodes_key_by_seed() {
        use helix_exec::Phase;
        // An undeclared closure UDF that consumes the seed must fail at
        // execution time — it would otherwise be stored under a
        // seed-independent signature and poison cross-seed sharing.
        let mut sneaky = Workflow::new("sneaky");
        let a = sneaky.source("a", 1, |_| Ok(Value::Scalar(Scalar::I64(1))));
        let b = sneaky.udf_collection("b", Phase::Dpr, &[a], 1, |_inputs, ctx| {
            Ok(Value::Scalar(Scalar::I64(ctx.seed() as i64)))
        });
        sneaky.output(b);
        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let sigs = chain_signatures(&sneaky, &HashMap::new(), &ExecEnv::new(7));
        let states = vec![State::Compute; sneaky.len()];
        let err = execute(EngineParams {
            wf: &sneaky,
            states: &states,
            sigs: &sigs,
            catalog: &catalog,
            strategy: MatStrategy::Never,
            budget_bytes: u64::MAX,
            workers: 1,
            cache_policy: CachePolicy::Eager,
            iteration: 0,
            seed: 7,
            tenant: "",
            core_budget: None,
            prev_elective: &HashMap::new(),
            hysteresis: 0.0,
            pipeline: false,
            writer: None,
            microbatch_rows: 0,
        });
        let message = match err {
            Err(err) => format!("{err}"),
            Ok(_) => panic!("undeclared seed use must error"),
        };
        assert!(message.contains("SeededOperator"), "error must point at the fix: {message}");

        // The declared twin executes fine — and its signature is keyed
        // by seed, unlike the deterministic source upstream.
        let declared = |version: u64| {
            let mut wf = Workflow::new("declared");
            let a = wf.source("a", 1, |_| Ok(Value::Scalar(Scalar::I64(1))));
            let b = wf.udf_collection_seeded("b", Phase::Dpr, &[a], version, |_inputs, ctx| {
                Ok(Value::Scalar(Scalar::I64(ctx.seed() as i64)))
            });
            wf.output(b);
            wf
        };
        let wf = declared(1);
        let s1 = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(1));
        let s2 = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(2));
        let at = |n: &str| wf.node_by_name(n).unwrap().ix();
        assert_eq!(s1[at("a")], s2[at("a")], "deterministic source shared across seeds");
        assert_ne!(s1[at("b")], s2[at("b")], "seeded UDF keyed by seed");
        let states = vec![State::Compute; wf.len()];
        let outcome = execute(EngineParams {
            wf: &wf,
            states: &states,
            sigs: &s1,
            catalog: &catalog,
            strategy: MatStrategy::Never,
            budget_bytes: u64::MAX,
            workers: 1,
            cache_policy: CachePolicy::Eager,
            iteration: 0,
            seed: 1,
            tenant: "",
            core_budget: None,
            prev_elective: &HashMap::new(),
            hysteresis: 0.0,
            pipeline: false,
            writer: None,
            microbatch_rows: 0,
        })
        .expect("declared seed use executes");
        assert!(outcome.outputs.contains_key("b"));
    }

    #[test]
    fn parallel_matches_serial_on_chain_and_diamond() {
        for wf in [chain_wf(), diamond_wf()] {
            let output_name = if wf.name() == "e" { "c" } else { "join" };
            let serial_catalog =
                MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
            let serial = run_all_compute(&wf, &serial_catalog, MatStrategy::Always);
            for workers in [2, 4, 8] {
                let catalog =
                    MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
                let parallel =
                    run_all_compute_with_workers(&wf, &catalog, MatStrategy::Always, workers);
                assert_eq!(
                    serial.outputs[output_name].as_scalar().unwrap(),
                    parallel.outputs[output_name].as_scalar().unwrap(),
                    "workers={workers}"
                );
                assert_eq!(serial.metrics.computed, parallel.metrics.computed);
                assert_eq!(catalog.len(), serial_catalog.len(), "same materialization set");
                // Same signatures materialized, same decision order.
                let serial_sigs: Vec<String> =
                    serial_catalog.entries().iter().map(|e| e.signature.clone()).collect();
                let parallel_sigs: Vec<String> =
                    catalog.entries().iter().map(|e| e.signature.clone()).collect();
                assert_eq!(serial_sigs, parallel_sigs);
            }
        }
    }

    #[test]
    fn parallel_overlaps_independent_branches() {
        // Two independent 80 ms branches: serial ≥ 160 ms, 2 workers ≈ 80.
        // Sleeping operators model blocking work (I/O, external calls) so
        // the assertion holds even on a single-core CI machine.
        let mut wf = Workflow::new("sleepy");
        let src = wf.source("src", 1, |_| Ok(Value::Scalar(Scalar::F64(1.0))));
        let slow = |v: &Value| {
            std::thread::sleep(std::time::Duration::from_millis(80));
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x + 1.0)))
        };
        let a = wf.reduce("a", src, 1, move |v, _| slow(v));
        let b = wf.reduce("b", src, 1, move |v, _| slow(v));
        let join = wf.reduce_many("join", [a, b], 1, |vs, _| {
            let total: f64 =
                vs.iter().filter_map(|v| v.as_scalar().ok().and_then(|s| s.as_f64())).sum();
            Ok(Value::Scalar(Scalar::F64(total)))
        });
        wf.output(join);

        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let t_serial = std::time::Instant::now();
        let serial = run_all_compute_with_workers(&wf, &catalog, MatStrategy::Never, 1);
        let serial_time = t_serial.elapsed();

        let t_parallel = std::time::Instant::now();
        let parallel = run_all_compute_with_workers(&wf, &catalog, MatStrategy::Never, 2);
        let parallel_time = t_parallel.elapsed();

        assert_eq!(
            serial.outputs["join"].as_scalar().unwrap(),
            parallel.outputs["join"].as_scalar().unwrap()
        );
        assert!(
            parallel_time < serial_time * 3 / 4,
            "2 workers {parallel_time:?} should beat serial {serial_time:?} on 2 branches"
        );
    }

    #[test]
    fn error_reporting_matches_serial_at_any_worker_count() {
        // Two failing branches: `slow_fail` (earlier topo position, fails
        // after 60 ms) and `fast_fail` (later position, fails instantly).
        // Serial hits `slow_fail` first; a naive parallel engine would
        // report whichever error *arrives* first — fast_fail. The engine
        // must keep dispatching nodes before the error position and
        // report the earliest-topo-position error, like serial.
        let mut wf = Workflow::new("errs");
        let src = wf.source("src", 1, |_| Ok(Value::Scalar(Scalar::F64(1.0))));
        let slow = wf.reduce("slow_fail", src, 1, |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(60));
            Err(HelixError::exec("slow_fail", "slow branch failed"))
        });
        let fast = wf.reduce("fast_fail", src, 1, |_, _| {
            Err(HelixError::exec("fast_fail", "fast branch failed"))
        });
        let join =
            wf.reduce_many("join", [slow, fast], 1, |_, _| Ok(Value::Scalar(Scalar::F64(0.0))));
        wf.output(join);

        let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let sigs = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(7));
        let states = vec![State::Compute; wf.len()];
        let mut messages = Vec::new();
        for workers in [1, 4] {
            let result = execute(EngineParams {
                wf: &wf,
                states: &states,
                sigs: &sigs,
                catalog: &catalog,
                strategy: MatStrategy::Never,
                budget_bytes: u64::MAX,
                workers,
                cache_policy: CachePolicy::Eager,
                iteration: 0,
                seed: 7,
                tenant: "",
                core_budget: None,
                prev_elective: &HashMap::new(),
                hysteresis: 0.0,
                pipeline: false,
                writer: None,
                microbatch_rows: 0,
            });
            let Err(err) = result else {
                panic!("workers={workers}: expected an error");
            };
            messages.push(format!("{err}"));
        }
        assert!(
            messages[0].contains("slow_fail"),
            "serial must report the earlier-topo error, got: {}",
            messages[0]
        );
        assert_eq!(messages[0], messages[1], "parallel error must match serial");
    }

    #[test]
    fn failed_iteration_leaves_serial_identical_catalog() {
        // `slow_ok` (topo pos 1) succeeds after 60 ms; `fast_fail` (pos 2)
        // fails instantly. Serial materializes slow_ok (Always) and then
        // errors; a parallel run sees the error first but must still
        // commit the earlier-position materialization — and nothing else.
        let build = || {
            let mut wf = Workflow::new("failpar");
            let src = wf.source("src", 1, |_| Ok(Value::Scalar(Scalar::F64(1.0))));
            // Leaves: slow_ok's finalize event triggers at its own topo
            // position (1), strictly before the error at fast_fail (2).
            let _slow = wf.reduce("slow_ok", src, 1, |v, _| {
                std::thread::sleep(std::time::Duration::from_millis(60));
                let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
                Ok(Value::Scalar(Scalar::F64(x + 1.0)))
            });
            let _fast =
                wf.reduce("fast_fail", src, 1, |_, _| Err(HelixError::exec("fast_fail", "boom")));
            wf
        };
        let mut catalog_sigs = Vec::new();
        for workers in [1, 4] {
            let wf = build();
            let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
            let sigs = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(7));
            let states = vec![State::Compute; wf.len()];
            let result = execute(EngineParams {
                wf: &wf,
                states: &states,
                sigs: &sigs,
                catalog: &catalog,
                strategy: MatStrategy::Always,
                budget_bytes: u64::MAX,
                workers,
                cache_policy: CachePolicy::Eager,
                iteration: 0,
                seed: 7,
                tenant: "",
                core_budget: None,
                prev_elective: &HashMap::new(),
                hysteresis: 0.0,
                pipeline: false,
                writer: None,
                microbatch_rows: 0,
            });
            assert!(result.is_err(), "workers={workers}");
            let entries: Vec<String> =
                catalog.entries().iter().map(|e| e.signature.clone()).collect();
            catalog_sigs.push(entries);
        }
        assert_eq!(
            catalog_sigs[0], catalog_sigs[1],
            "failed iteration must leave the same catalog at any worker count"
        );
        assert_eq!(catalog_sigs[0].len(), 1, "exactly slow_ok's artifact survives");
    }

    #[test]
    fn microbatch_streaming_is_byte_identical_to_whole_frame() {
        use helix_data::{FieldValue, Record, RecordBatch, Schema};
        let build = || {
            let mut wf = Workflow::new("stream");
            let raw = wf.source("raw", 1, |_| {
                let schema = Schema::new(["line"]);
                let rows = (0..200)
                    .map(|i| Record::train(vec![FieldValue::Text(format!("{i},v{i}"))]))
                    .collect();
                Ok(Value::records(RecordBatch::new(schema, rows)?))
            });
            let parsed = wf.csv_scan("parsed", raw, &["id", "val"]);
            let ext = wf.field_extractor("ext", parsed, "val");
            wf.output(ext);
            wf
        };
        let run = |microbatch_rows: usize, workers: usize| {
            let wf = build();
            let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
            let sigs = chain_signatures(&wf, &HashMap::new(), &ExecEnv::new(7));
            let states = vec![State::Compute; wf.len()];
            let outcome = execute(EngineParams {
                wf: &wf,
                states: &states,
                sigs: &sigs,
                catalog: &catalog,
                strategy: MatStrategy::Always,
                budget_bytes: u64::MAX,
                workers,
                cache_policy: CachePolicy::Eager,
                iteration: 0,
                seed: 7,
                tenant: "",
                core_budget: None,
                prev_elective: &HashMap::new(),
                hysteresis: 0.0,
                pipeline: false,
                writer: None,
                microbatch_rows,
            })
            .unwrap();
            let entries: Vec<String> =
                catalog.entries().iter().map(|e| e.signature.clone()).collect();
            (format!("{:?}", outcome.outputs["ext"]), entries)
        };
        let (whole_out, whole_entries) = run(0, 1);
        for batch in [1usize, 7, 64, 200, 201] {
            for workers in [1usize, 4] {
                let (out, entries) = run(batch, workers);
                assert_eq!(out, whole_out, "batch={batch} workers={workers}");
                assert_eq!(entries, whole_entries, "batch={batch} workers={workers}");
            }
        }
    }

    #[test]
    fn finalize_sequence_is_timing_independent() {
        let wf = diamond_wf();
        let dag = wf.dag();
        let order = dag.topo_order().unwrap();
        let states = vec![State::Compute; wf.len()];
        let seq = serial_finalize_sequence(dag, &states, &order);
        // src (node 0) goes out of scope after both branches; branches
        // after the join; join after itself (no compute children).
        let (first_finalized, trigger_pos) = seq.first().copied().unwrap();
        assert_eq!(first_finalized, NodeId(0), "src retires once left+right are done");
        assert_eq!(trigger_pos, 2, "…which happens at the second branch's topo position");
        assert_eq!(seq, serial_finalize_sequence(dag, &states, &order), "pure function");
    }
}
