//! The iteration driver (paper §2.2, "The Workflow Lifecycle").
//!
//! A [`Session`] persists across iterations: it owns the materialization
//! catalog, the per-signature run-time statistics, and volatile-operator
//! nonces. Each `run(&workflow)` performs the full lifecycle:
//!
//! 1. **DAG compilation** — chain signatures (`track`).
//! 2. **Purge** — deprecated materializations of original operators are
//!    removed (paper §6.6: storage is non-monotonic for this reason).
//! 3. **DAG optimization** — OPT-EXEC-PLAN via max-flow (`plan`).
//! 4. **Volatile refresh** — non-deterministic operators about to
//!    re-execute get fresh nonces; the plan is recomputed so stale
//!    downstream artifacts cannot be loaded.
//! 5. **Execution + materialization** — the engine runs the plan, making
//!    streaming OPT-MAT-PLAN decisions (Algorithm 2) under the budget.
//! 6. **Statistics update** — measured times feed the next iteration.
//!
//! Baselines from the paper's evaluation are session configurations:
//! [`SessionConfig::keystoneml_like`] (no reuse, no materialization) and
//! [`SessionConfig::deepdive_like`] (materialize everything, reuse DPR
//! only).

use crate::driver::{drive_overlapped, SessionDriver};
use crate::dsl::Workflow;
use crate::engine::{execute, EngineParams};
use crate::materialize::MatStrategy;
use crate::pipeline::{BackgroundWriter, SpeculationInputs, SpeculativePlan};
use crate::plan::{plan, plan_read_set, PlanInputs};
use crate::track::{chain_signatures, signature_snapshot, ExecEnv};
use helix_common::hash::Signature;
use helix_common::timing::Nanos;
use helix_common::Result;
use helix_data::{Scalar, Value};
use helix_exec::{CachePolicy, CoreBudget, IterationMetrics};
use helix_flow::oep::State;
use helix_storage::catalog::SOLO_OWNER;
use helix_storage::{DiskProfile, MaterializationCatalog};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Which operator phases may reuse materialized results across iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReuseScope {
    /// HELIX: any equivalent materialization is reusable.
    All,
    /// DeepDive-like: only data-preprocessing results are reused;
    /// learning/inference and postprocessing always recompute.
    DprOnly,
    /// KeystoneML-like: no cross-iteration reuse at all.
    None,
}

/// Session configuration.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Worker-pool width for data-parallel operators.
    pub workers: usize,
    /// Materialization policy (OPT / AM / NM).
    pub strategy: MatStrategy,
    /// Reuse scope (system personality).
    pub reuse: ReuseScope,
    /// Storage budget in bytes (paper §6.3 used 10 GB).
    pub storage_budget_bytes: u64,
    /// Emulated disk characteristics.
    pub disk: DiskProfile,
    /// Catalog directory; `None` = fresh temp directory.
    pub catalog_dir: Option<PathBuf>,
    /// Master seed for all stochastic operators. `None` = unset: solo
    /// sessions fall back to [`DEFAULT_SEED`]; a service fills in its
    /// configured default at `open_session` time. The seed is part of the
    /// signature provenance ([`ExecEnv`]), so sessions with different
    /// seeds can safely share one catalog — seed-dependent artifacts are
    /// keyed apart, seed-independent ones still collide and are reused.
    pub seed: Option<u64>,
    /// In-memory cache policy (HELIX's eager eviction by default).
    pub cache_policy: CachePolicy,
    /// Compute-time estimate for operators never measured before.
    pub default_compute_nanos: Nanos,
    /// Hysteresis dead band for Algorithm 2's elective decisions
    /// (fraction of the `2·l(n)` threshold; 0 = the paper's strict rule).
    pub mat_hysteresis: f64,
    /// Pipelined iteration runtime (on by default): prefetched loads,
    /// background materialization writes, and — through
    /// [`Session::run_pipelined`] or `helix-serve` — speculative
    /// planning of the next iteration while the current one executes.
    /// Off = the strictly serial reference the determinism suites
    /// compare against. Results are byte-identical either way.
    pub pipeline: bool,
    /// Micro-batch co-execution: partitionable operators execute as a
    /// stream of fixed `microbatch_rows`-row partitions with overlapped
    /// load/compute/commit lanes (see `helix_core::microbatch`). 0 (the
    /// default) = whole-frame execution. Byte-identical either way —
    /// an execution detail like `workers`.
    pub microbatch_rows: usize,
}

/// The seed a session runs under when neither the caller nor a service
/// supplies one.
pub const DEFAULT_SEED: u64 = 42;

impl SessionConfig {
    /// HELIX OPT on an unthrottled temp catalog (tests, examples).
    pub fn in_memory() -> SessionConfig {
        SessionConfig {
            workers: 1,
            strategy: MatStrategy::Opt,
            reuse: ReuseScope::All,
            storage_budget_bytes: 256 << 20,
            disk: DiskProfile::unthrottled(),
            catalog_dir: None,
            seed: None,
            cache_policy: CachePolicy::Eager,
            default_compute_nanos: 1_000_000,
            mat_hysteresis: 0.0,
            pipeline: true,
            microbatch_rows: 0,
        }
    }

    /// The KeystoneML-like baseline: one-shot execution, "no intermediate
    /// results are materialized … it does not optimize execution across
    /// iterations" (paper §6.1).
    pub fn keystoneml_like() -> SessionConfig {
        SessionConfig { strategy: MatStrategy::Never, reuse: ReuseScope::None, ..Self::in_memory() }
    }

    /// The DeepDive-like baseline: "all intermediate results are
    /// materialized" (paper §6.1), but only DPR results are reused across
    /// iterations (its learning/evaluation always rerun, §6.5.1).
    pub fn deepdive_like() -> SessionConfig {
        SessionConfig {
            strategy: MatStrategy::Always,
            reuse: ReuseScope::DprOnly,
            ..Self::in_memory()
        }
    }

    /// Builder: set the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> SessionConfig {
        self.workers = workers;
        self
    }

    /// Builder: set the disk profile.
    #[must_use]
    pub fn with_disk(mut self, disk: DiskProfile) -> SessionConfig {
        self.disk = disk;
        self
    }

    /// Builder: set the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> SessionConfig {
        self.seed = Some(seed);
        self
    }

    /// The seed this configuration resolves to ([`DEFAULT_SEED`] when
    /// unset).
    pub fn resolved_seed(&self) -> u64 {
        self.seed.unwrap_or(DEFAULT_SEED)
    }

    /// Builder: set the storage budget.
    #[must_use]
    pub fn with_budget(mut self, bytes: u64) -> SessionConfig {
        self.storage_budget_bytes = bytes;
        self
    }

    /// Builder: set the materialization strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: MatStrategy) -> SessionConfig {
        self.strategy = strategy;
        self
    }

    /// Builder: set the elective-materialization hysteresis dead band.
    #[must_use]
    pub fn with_hysteresis(mut self, band: f64) -> SessionConfig {
        self.mat_hysteresis = band;
        self
    }

    /// Builder: toggle the pipelined iteration runtime.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: bool) -> SessionConfig {
        self.pipeline = pipeline;
        self
    }

    /// Builder: set the micro-batch partition size (0 = whole-frame).
    #[must_use]
    pub fn with_microbatch(mut self, rows: usize) -> SessionConfig {
        self.microbatch_rows = rows;
        self
    }
}

/// Shared infrastructure a service injects into a tenant session.
///
/// A solo [`Session::new`] builds private handles (its own catalog, no
/// core budget); `helix-serve` builds one catalog and one [`CoreBudget`]
/// per service and hands every session the same `Arc`s, which is what
/// makes cross-tenant artifact reuse and machine-wide core accounting
/// work.
#[derive(Clone)]
pub struct SessionHandles {
    /// The (possibly shared) materialization catalog.
    pub catalog: Arc<MaterializationCatalog>,
    /// The shared core-token budget (`None` = unconstrained).
    pub core_budget: Option<Arc<CoreBudget>>,
    /// Owner label for catalog accounting
    /// ([`helix_storage::catalog::SOLO_OWNER`] for solo use).
    pub tenant: String,
}

/// What one iteration returned to the user.
pub struct IterationReport {
    /// Iteration number (0-based).
    pub iteration: u64,
    /// Aggregated metrics.
    pub metrics: IterationMetrics,
    /// Output values by node name.
    pub outputs: HashMap<String, Arc<Value>>,
    /// Final state per node, by name (Figure 8's raw data).
    pub states: Vec<(String, State)>,
}

impl IterationReport {
    /// An output value by name.
    pub fn output(&self, name: &str) -> Option<&Arc<Value>> {
        self.outputs.get(name)
    }

    /// An output scalar by name.
    pub fn output_scalar(&self, name: &str) -> Option<&Scalar> {
        self.outputs.get(name).and_then(|v| v.as_scalar().ok())
    }

    /// Total wall time of the iteration (execution + materialization).
    pub fn total_nanos(&self) -> Nanos {
        self.metrics.total_nanos()
    }
}

/// The cross-iteration driver.
pub struct Session {
    config: SessionConfig,
    /// The execution-environment provenance fingerprint (resolved seed),
    /// folded into every signature chain this session computes.
    env: ExecEnv,
    catalog: Arc<MaterializationCatalog>,
    core_budget: Option<Arc<CoreBudget>>,
    tenant: String,
    iteration: u64,
    nonce_counter: u64,
    volatile_nonces: HashMap<String, u64>,
    compute_stats: HashMap<Signature, Nanos>,
    prev_sigs: HashMap<String, HashMap<String, Signature>>,
    elective_memory: HashMap<Signature, bool>,
    history: Vec<IterationMetrics>,
    /// The background materialization write lane (created lazily on the
    /// first pipelined iteration that can store; drains on drop).
    writer: Option<BackgroundWriter>,
    /// Speculative plans adopted verbatim / discarded by validation.
    spec_hits: u64,
    spec_misses: u64,
}

/// A planned-but-not-yet-executed iteration: the product of
/// [`Session::prepare_iteration`] (lifecycle steps 1–4½ — signatures,
/// purge, OPT-EXEC-PLAN, volatile refresh, load claims), consumed by
/// [`Session::execute_prepared`]. The split is what lets `helix-serve`
/// treat "in flight" as *execute-phase only* and overlap one iteration's
/// planning with its predecessor's execution.
pub struct PreparedIteration {
    states: Vec<State>,
    sigs: Vec<Signature>,
    /// RAII pins on the plan's `Load` signatures: held from plan-claim
    /// time until the iteration retires (or the prepared iteration is
    /// dropped unexecuted), so another tenant's *global-pressure*
    /// eviction can never delete an artifact this plan is about to load.
    /// Owner claims already shield against `release` and quota eviction;
    /// pins close the same window against `evict_global`, whose victims
    /// may be co-owned.
    pins: Option<PlanPins>,
}

/// Transient catalog pins scoped to one prepared iteration.
struct PlanPins {
    catalog: Arc<MaterializationCatalog>,
    sigs: Vec<Signature>,
}

impl Drop for PlanPins {
    fn drop(&mut self) {
        self.catalog.unpin_many(&self.sigs);
    }
}

impl Session {
    /// Open a solo session (creating or reopening a private catalog).
    pub fn new(config: SessionConfig) -> Result<Session> {
        let catalog = match &config.catalog_dir {
            Some(dir) => MaterializationCatalog::open(dir, config.disk)?,
            None => MaterializationCatalog::open_temp(config.disk)?,
        };
        let handles = SessionHandles {
            catalog: Arc::new(catalog),
            core_budget: None,
            tenant: SOLO_OWNER.to_string(),
        };
        Ok(Self::with_handles(config, handles))
    }

    /// Open a session over shared infrastructure (the `helix-serve` path).
    ///
    /// `config.catalog_dir` and `config.disk` are ignored — the injected
    /// catalog already fixes both. `config.storage_budget_bytes` is the
    /// tenant's quota within the shared store.
    pub fn with_handles(config: SessionConfig, handles: SessionHandles) -> Session {
        Session {
            env: ExecEnv::new(config.resolved_seed()),
            config,
            catalog: handles.catalog,
            core_budget: handles.core_budget,
            tenant: handles.tenant,
            iteration: 0,
            nonce_counter: 1,
            volatile_nonces: HashMap::new(),
            compute_stats: HashMap::new(),
            prev_sigs: HashMap::new(),
            elective_memory: HashMap::new(),
            history: Vec::new(),
            writer: None,
            spec_hits: 0,
            spec_misses: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The execution environment this session's signatures are keyed by.
    pub fn env(&self) -> &ExecEnv {
        &self.env
    }

    /// The resolved master seed.
    pub fn seed(&self) -> u64 {
        self.env.seed
    }

    /// The materialization catalog.
    pub fn catalog(&self) -> &MaterializationCatalog {
        &self.catalog
    }

    /// The owner label this session stores and releases artifacts under.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Per-iteration metrics so far.
    pub fn history(&self) -> &[IterationMetrics] {
        &self.history
    }

    /// Iterations run so far.
    pub fn iterations_run(&self) -> u64 {
        self.iteration
    }

    /// Run one iteration of `wf` through the full lifecycle. This is the
    /// solo consumption of the [`SessionDriver`](crate::driver) state
    /// machine: drive to completion inline, no parking.
    pub fn run(&mut self, wf: &Workflow) -> Result<IterationReport> {
        SessionDriver::new(self, wf).drive()
    }

    /// Run a whole scripted sequence of iterations with cross-iteration
    /// pipelining: while iteration `t` executes, iteration `t+1`'s
    /// signature chain and OPT-EXEC-PLAN are speculatively computed on a
    /// budget-leased thread, then revalidated (and adopted only on a
    /// perfect read-set match) when its turn comes. Byte-identical to
    /// calling [`run`](Self::run) once per workflow — speculation can
    /// only move planning off the critical path, never change its result.
    /// Each loop turn is one [`crate::driver::drive_overlapped`] call —
    /// the same driver + budget-gated speculation the service runner
    /// uses.
    pub fn run_pipelined(&mut self, wfs: &[Workflow]) -> Result<Vec<IterationReport>> {
        let mut reports = Vec::with_capacity(wfs.len());
        let mut hint: Option<SpeculativePlan> = None;
        for (t, wf) in wfs.iter().enumerate() {
            let next_wf = if self.config.pipeline { wfs.get(t + 1) } else { None };
            let (report, spec) = drive_overlapped(self, wf, hint.take(), next_wf)?;
            hint = spec;
            reports.push(report);
        }
        Ok(reports)
    }

    /// Lifecycle steps 1–4½: signatures, purge, OPT-EXEC-PLAN, volatile
    /// refresh, plan-time load claims. `hint` is a speculative plan from
    /// [`speculate_budgeted`](crate::driver::speculate_budgeted); it is
    /// adopted only when its workflow identity,
    /// nonce state, execution-environment provenance, and the planner's
    /// entire post-purge read set still match — otherwise this plans from
    /// scratch, exactly like a serial session. Either way the resulting
    /// plan is the serial plan.
    pub fn prepare_iteration(
        &mut self,
        wf: &Workflow,
        hint: Option<SpeculativePlan>,
    ) -> Result<PreparedIteration> {
        // A failed background write from an earlier iteration fails this
        // one loudly, before any new catalog state is built on top of it.
        if let Some(err) = self.writer.as_ref().and_then(BackgroundWriter::take_error) {
            return Err(err);
        }

        // 1. Compile: chain signatures under current nonces — always
        //    recomputed, never trusted from the hint. Chain equality is
        //    the hint's identity check: equal chains mean equivalent
        //    workflows under equal nonce state (Definition 3), so no
        //    address/name heuristic (which allocation reuse could defeat)
        //    is ever relied on.
        let hint_given = hint.is_some();
        let planning_sigs = chain_signatures(wf, &self.volatile_nonces, &self.env);
        let hint_solution = match hint {
            Some(h) if h.sigs == planning_sigs => Some((h.plan, h.read_set)),
            _ => None,
        };

        // 2. Purge deprecated materializations of original operators
        //    (paper §6.6) so budget is not wasted on unreachable artifacts.
        //    `release` drops only *this* session's claim: on a shared
        //    catalog the file survives while other tenants still own it.
        if let Some(previous) = self.prev_sigs.get(wf.name()) {
            for (id, spec) in wf.dag().iter() {
                if let Some(old_sig) = previous.get(&spec.name) {
                    if *old_sig != planning_sigs[id.ix()] {
                        self.catalog.release(*old_sig, &self.tenant)?;
                        self.elective_memory.remove(old_sig);
                    }
                }
            }
        }

        // 3. Optimize: OPT-EXEC-PLAN. A speculative solve is adopted only
        //    if every lookup the planner performs — per-node load
        //    estimate under the reuse gate, per-node measured compute
        //    time — still returns exactly what the speculation saw (the
        //    purge above, co-tenants, and the previous iteration's own
        //    stores/statistics all race speculation; any drift fails the
        //    comparison and we solve afresh, which is what a serial
        //    session always does).
        let inputs = PlanInputs {
            sigs: &planning_sigs,
            catalog: &self.catalog,
            reuse: self.config.reuse,
            compute_stats: &self.compute_stats,
            default_compute_nanos: self.config.default_compute_nanos,
        };
        let mut planned = match hint_solution {
            Some((plan_hint, read_set)) if plan_read_set(wf, &inputs) == read_set => {
                self.spec_hits += 1;
                plan_hint
            }
            _ => {
                if hint_given {
                    self.spec_misses += 1;
                }
                plan(wf, &inputs)
            }
        };

        // 4. Volatile refresh: any non-deterministic operator about to
        //    re-execute gets a fresh nonce; descendants' signatures change,
        //    so re-plan to guarantee no stale downstream artifact is loaded.
        let mut refreshed = false;
        for (id, spec) in wf.dag().iter() {
            if spec.volatile && planned.states[id.ix()] == State::Compute {
                self.volatile_nonces.insert(spec.name.clone(), self.nonce_counter);
                self.nonce_counter += 1;
                refreshed = true;
            }
        }
        let storage_sigs = if refreshed {
            let sigs = chain_signatures(wf, &self.volatile_nonces, &self.env);
            let inputs = PlanInputs {
                sigs: &sigs,
                catalog: &self.catalog,
                reuse: self.config.reuse,
                compute_stats: &self.compute_stats,
                default_compute_nanos: self.config.default_compute_nanos,
            };
            planned = plan(wf, &inputs);
            sigs
        } else {
            planning_sigs
        };

        // 4½. Claim + pin planned loads. On a shared catalog, the window
        //    between planning (`contains` said yes) and execution is a
        //    race against other tenants' deprecation, quota eviction,
        //    and global-pressure eviction. Each `Load` signature is
        //    claimed as a co-owner *and* transiently pinned under one
        //    catalog lock hold (`claim_and_pin_if_present`): once
        //    claimed, another tenant's `release` drops only its own
        //    claim and quota eviction skips co-owned artifacts; the pin
        //    additionally shields against `evict_global`, whose victims
        //    may be co-owned — atomically, so there is no
        //    claimed-but-unpinned instant an eviction could exploit. A
        //    failed claim means the artifact vanished mid-plan — replan
        //    (the node falls back to `Compute`) and try again. The retry
        //    loop is bounded: claims only fail for freshly deleted
        //    artifacts, and a replan without them cannot resurrect them.
        //    Pins accumulate across retries (a superseded plan's pin is
        //    just held conservatively until the iteration retires).
        let mut pinned: Vec<Signature> = Vec::new();
        for _attempt in 0..=wf.len() {
            let mut vanished = false;
            for (id, _) in wf.dag().iter() {
                if planned.states[id.ix()] == State::Load {
                    let sig = storage_sigs[id.ix()];
                    if self.catalog.claim_and_pin_if_present(sig, &self.tenant) {
                        pinned.push(sig);
                    } else {
                        vanished = true;
                    }
                }
            }
            if !vanished {
                break;
            }
            let inputs = PlanInputs {
                sigs: &storage_sigs,
                catalog: &self.catalog,
                reuse: self.config.reuse,
                compute_stats: &self.compute_stats,
                default_compute_nanos: self.config.default_compute_nanos,
            };
            planned = plan(wf, &inputs);
        }

        // The pins taken above live until the prepared iteration retires
        // (RAII; one unpin per successful claim-and-pin, including
        // superseded retry attempts).
        let pins = (!pinned.is_empty())
            .then(|| PlanPins { catalog: Arc::clone(&self.catalog), sigs: pinned });

        // Background-reclaimer carry-over: claims credit co-owner bytes
        // with no budget check of their own, so plan-time claims alone
        // can push the shared store past its global budget. Drain that
        // pressure now instead of waiting for the next store to trip the
        // engine's check. Plan signatures are protected (and the claimed
        // ones pinned), so this can only evict other artifacts.
        if let Some(global) = self.catalog.global_budget() {
            let projected = self.catalog.total_bytes();
            if projected > global {
                let protected: std::collections::HashSet<Signature> =
                    storage_sigs.iter().copied().collect();
                self.catalog.evict_global(&self.tenant, projected - global, &protected)?;
            }
        }

        Ok(PreparedIteration { states: planned.states, sigs: storage_sigs, pins })
    }

    /// Lifecycle steps 5–6: execute the prepared plan (with the
    /// pipelined lanes when configured) and fold the measurements back
    /// into the session. `wf` must be the workflow the plan was prepared
    /// for.
    pub fn execute_prepared(
        &mut self,
        wf: &Workflow,
        prepared: PreparedIteration,
    ) -> Result<IterationReport> {
        // `pins` stays alive for the whole execution and unpins on every
        // exit path (including unwinds caught by the service runner).
        let PreparedIteration { states: planned_states, sigs: storage_sigs, pins } = prepared;
        let _pins = pins;
        assert_eq!(planned_states.len(), wf.len(), "prepared plan does not match the workflow");

        // The write lane exists once per session (its drain spans
        // iteration boundaries); created on the first iteration that can
        // actually store. The gate mirrors the engine's: under the LRU
        // ablation the lanes are off, so a writer would idle unused.
        if self.config.pipeline
            && self.config.strategy != MatStrategy::Never
            && !matches!(self.config.cache_policy, CachePolicy::Lru { .. })
            && self.writer.is_none()
        {
            self.writer =
                Some(BackgroundWriter::new(Arc::clone(&self.catalog), self.core_budget.clone()));
        }

        // 5. Execute + materialize.
        let iteration_span = helix_obs::span(helix_obs::layer::ENGINE, "iteration")
            .tenant(self.tenant.as_str())
            .iteration(self.iteration);
        let outcome = execute(EngineParams {
            wf,
            states: &planned_states,
            sigs: &storage_sigs,
            catalog: &self.catalog,
            strategy: self.config.strategy,
            budget_bytes: self.config.storage_budget_bytes,
            workers: self.config.workers,
            cache_policy: self.config.cache_policy,
            iteration: self.iteration,
            seed: self.env.seed,
            tenant: &self.tenant,
            core_budget: self.core_budget.as_ref(),
            prev_elective: &self.elective_memory,
            hysteresis: self.config.mat_hysteresis,
            pipeline: self.config.pipeline,
            writer: self.writer.as_ref(),
            microbatch_rows: self.config.microbatch_rows,
        })?;
        drop(iteration_span);

        // 6. Update statistics and snapshots.
        for (sig, nanos) in &outcome.compute_times {
            self.compute_stats.insert(*sig, *nanos);
        }
        for (sig, decision) in &outcome.elective_decisions {
            self.elective_memory.insert(*sig, *decision);
        }
        self.prev_sigs.insert(wf.name().to_string(), signature_snapshot(wf, &storage_sigs));
        let states: Vec<(String, State)> = wf
            .dag()
            .iter()
            .map(|(id, spec)| (spec.name.clone(), planned_states[id.ix()]))
            .collect();
        self.history.push(outcome.metrics.clone());
        let report = IterationReport {
            iteration: self.iteration,
            metrics: outcome.metrics,
            outputs: outcome.outputs,
            states,
        };
        self.iteration += 1;
        Ok(report)
    }

    /// Snapshot everything speculative planning reads, for
    /// [`speculate_budgeted`](crate::driver::speculate_budgeted). Taken
    /// when an iteration enters its execute phase:
    /// the per-session maps are stable until the next `prepare_iteration`
    /// mutates them, and the (live) catalog handle races only writes that
    /// read-set validation will catch.
    pub fn speculation_snapshot(&self) -> SpeculationInputs {
        SpeculationInputs {
            catalog: Arc::clone(&self.catalog),
            env: self.env,
            volatile_nonces: self.volatile_nonces.clone(),
            compute_stats: self.compute_stats.clone(),
            reuse: self.config.reuse,
            default_compute_nanos: self.config.default_compute_nanos,
        }
    }

    /// The shared core budget this session draws from, if any (for the
    /// driver's budget-gated speculation lane).
    pub(crate) fn core_budget_arc(&self) -> Option<Arc<CoreBudget>> {
        self.core_budget.clone()
    }

    /// Pending background materialization writes (the driver's
    /// [`crate::driver::Step::NeedsIo`] cue).
    pub(crate) fn writer_backlog(&self) -> usize {
        self.writer.as_ref().map_or(0, BackgroundWriter::backlog)
    }

    /// Block until every background materialization write has landed and
    /// the manifest is sealed. Call before comparing or reopening the
    /// catalog directory; iteration *results* never require it.
    pub fn sync(&self) -> Result<()> {
        match &self.writer {
            Some(writer) => writer.sync(),
            None => Ok(()),
        }
    }

    /// `(adopted, discarded)` speculative-plan counts — how often the
    /// plan lane's work survived validation.
    pub fn speculation_stats(&self) -> (u64, u64) {
        (self.spec_hits, self.spec_misses)
    }

    /// Signatures whose materialization Algorithm 2 decided *electively*
    /// (latest decision per signature). Elective choices compare measured
    /// node times against the disk model, so they are wall-timing-coupled
    /// and legitimately differ between otherwise identical sessions —
    /// cross-session catalog comparisons must exclude them.
    pub fn elective_signatures(&self) -> Vec<Signature> {
        self.elective_memory.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Algo;
    use helix_data::{Example, ExampleBatch, FeatureVector, Split};

    /// Busy-wait so operator compute costs dominate load costs — without
    /// this, the optimizer correctly prefers recomputing trivial scalars
    /// over disk loads and reuse assertions become timing-dependent.
    fn spin(millis: u64) {
        let until = std::time::Instant::now() + std::time::Duration::from_millis(millis);
        while std::time::Instant::now() < until {
            std::hint::spin_loop();
        }
    }

    fn scalar_chain(b_version: u64) -> Workflow {
        let mut wf = Workflow::new("chain");
        let a = wf.source("a", 1, |_| {
            spin(3);
            Ok(Value::Scalar(Scalar::I64(10)))
        });
        let b = wf.reduce("b", a, b_version, move |v, _| {
            spin(3);
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x * (b_version as f64))))
        });
        let c = wf.reduce("c", b, 1, |v, _| {
            spin(3);
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x + 1.0)))
        });
        wf.output(c);
        wf
    }

    #[test]
    fn iteration_zero_computes_everything() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let report = session.run(&scalar_chain(1)).unwrap();
        assert_eq!(report.output_scalar("c").unwrap().as_f64(), Some(11.0));
        assert_eq!(report.metrics.computed, 3);
        assert_eq!(report.metrics.pruned, 0);
    }

    #[test]
    fn identical_rerun_reuses_output() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        session.run(&scalar_chain(1)).unwrap();
        let rerun = session.run(&scalar_chain(1)).unwrap();
        assert_eq!(rerun.output_scalar("c").unwrap().as_f64(), Some(11.0));
        assert_eq!(rerun.metrics.computed, 0, "nothing recomputes on a pure rerun");
        assert!(rerun.metrics.loaded >= 1);
        assert!(
            rerun.metrics.total_nanos() < session.history()[0].total_nanos(),
            "rerun must be cheaper"
        );
    }

    #[test]
    fn ppr_change_recomputes_only_downstream() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        session.run(&scalar_chain(1)).unwrap();

        // Change c's UDF only.
        let mut wf = Workflow::new("chain");
        let a = wf.source("a", 1, |_| Ok(Value::Scalar(Scalar::I64(10))));
        let b = wf.reduce("b", a, 1, |v, _| {
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x * 1.0)))
        });
        let c = wf.reduce("c", b, 2, |v, _| {
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x + 100.0)))
        });
        wf.output(c);

        let report = session.run(&wf).unwrap();
        assert_eq!(report.output_scalar("c").unwrap().as_f64(), Some(110.0));
        let by_name: HashMap<&str, State> =
            report.states.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        assert_eq!(by_name["c"], State::Compute, "changed node recomputes");
        assert_ne!(by_name["a"], State::Compute, "unchanged upstream never recomputes");
    }

    #[test]
    fn upstream_change_deprecates_downstream() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        session.run(&scalar_chain(1)).unwrap();
        let report = session.run(&scalar_chain(3)).unwrap();
        assert_eq!(report.output_scalar("c").unwrap().as_f64(), Some(31.0));
        let by_name: HashMap<&str, State> =
            report.states.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        assert_eq!(by_name["b"], State::Compute);
        assert_eq!(by_name["c"], State::Compute);
    }

    #[test]
    fn purge_removes_deprecated_artifacts() {
        let mut session =
            Session::new(SessionConfig::in_memory().with_strategy(MatStrategy::Always)).unwrap();
        session.run(&scalar_chain(1)).unwrap();
        let after_first = session.catalog().len();
        assert_eq!(after_first, 3);
        // Change b: b and c deprecated and purged; a's artifact kept.
        session.run(&scalar_chain(2)).unwrap();
        assert_eq!(session.catalog().len(), 3, "two purged, two rewritten, one kept");
    }

    #[test]
    fn keystoneml_baseline_never_reuses() {
        let mut session = Session::new(SessionConfig::keystoneml_like()).unwrap();
        session.run(&scalar_chain(1)).unwrap();
        let rerun = session.run(&scalar_chain(1)).unwrap();
        assert_eq!(rerun.metrics.computed, 3, "full recompute every iteration");
        assert_eq!(rerun.metrics.loaded, 0);
        assert!(session.catalog().is_empty());
    }

    #[test]
    fn deepdive_baseline_reuses_dpr_only() {
        let mut session = Session::new(SessionConfig::deepdive_like()).unwrap();
        session.run(&scalar_chain(1)).unwrap();
        let rerun = session.run(&scalar_chain(1)).unwrap();
        let by_name: HashMap<&str, State> =
            rerun.states.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        assert_eq!(by_name["a"], State::Load, "DPR source reused");
        assert_eq!(by_name["b"], State::Compute, "PPR recomputes");
        assert_eq!(by_name["c"], State::Compute);
    }

    fn volatile_wf() -> Workflow {
        let mut wf = Workflow::new("volatile");
        let d = wf.source("d", 1, |_| {
            spin(3);
            Ok(Value::examples(ExampleBatch::dense(vec![
                Example::new(FeatureVector::Dense(vec![1.0, 2.0]), Some(0.0), Split::Train),
                Example::new(FeatureVector::Dense(vec![2.0, 1.0]), Some(1.0), Split::Train),
            ])))
        });
        let rff = wf.learner("rff", d, Algo::RandomFourier { dim_out: 4, gamma: 0.1 });
        let mapped = wf.predict("mapped", rff, d);
        let stat = wf.reduce("stat", mapped, 1, |v, _| {
            spin(3);
            let batch = v.as_collection()?.as_examples()?;
            let total: f64 = batch.examples.iter().map(|e| e.features.l2_norm()).sum();
            Ok(Value::Scalar(Scalar::F64(total)))
        });
        wf.output(stat);
        wf
    }

    #[test]
    fn volatile_results_reused_when_nothing_changed() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let first = session.run(&volatile_wf()).unwrap();
        let rerun = session.run(&volatile_wf()).unwrap();
        assert_eq!(rerun.metrics.computed, 0, "PPR-only style rerun reuses volatile chain");
        assert_eq!(
            first.output_scalar("stat").unwrap().as_f64(),
            rerun.output_scalar("stat").unwrap().as_f64(),
            "reused result is the very same artifact"
        );
    }

    #[test]
    fn volatile_reexecution_deprecates_descendants() {
        let mut session =
            Session::new(SessionConfig::in_memory().with_strategy(MatStrategy::Always)).unwrap();
        session.run(&volatile_wf()).unwrap();

        // Bump the source version: the RFF must re-execute with a fresh
        // projection, and `mapped`/`stat` must not load stale artifacts.
        let mut wf = Workflow::new("volatile");
        let d = wf.source("d", 2, |_| {
            Ok(Value::examples(ExampleBatch::dense(vec![
                Example::new(FeatureVector::Dense(vec![1.0, 2.0]), Some(0.0), Split::Train),
                Example::new(FeatureVector::Dense(vec![2.0, 1.0]), Some(1.0), Split::Train),
            ])))
        });
        let rff = wf.learner("rff", d, Algo::RandomFourier { dim_out: 4, gamma: 0.1 });
        let mapped = wf.predict("mapped", rff, d);
        let stat = wf.reduce("stat", mapped, 1, |v, _| {
            let batch = v.as_collection()?.as_examples()?;
            let total: f64 = batch.examples.iter().map(|e| e.features.l2_norm()).sum();
            Ok(Value::Scalar(Scalar::F64(total)))
        });
        wf.output(stat);

        let report = session.run(&wf).unwrap();
        assert_eq!(report.metrics.computed, 4, "whole volatile chain recomputes");
        assert_eq!(report.metrics.loaded, 0);
    }

    #[test]
    fn run_pipelined_is_byte_identical_to_serial_runs() {
        // Initial build, identical rerun, a change, its rerun — compute,
        // reuse, and invalidation paths all exercised.
        let sequence = || vec![scalar_chain(1), scalar_chain(1), scalar_chain(2), scalar_chain(2)];

        let config = SessionConfig::in_memory().with_strategy(MatStrategy::Always);
        let mut serial = Session::new(config.clone().with_pipeline(false)).unwrap();
        let serial_reports: Vec<IterationReport> =
            sequence().iter().map(|wf| serial.run(wf).unwrap()).collect();

        let mut pipelined = Session::new(config).unwrap();
        let pipelined_reports = pipelined.run_pipelined(&sequence()).unwrap();
        pipelined.sync().unwrap();

        for (t, (s, p)) in serial_reports.iter().zip(&pipelined_reports).enumerate() {
            assert_eq!(
                s.output_scalar("c").unwrap().as_f64(),
                p.output_scalar("c").unwrap().as_f64(),
                "iteration {t} output"
            );
            let states = |r: &IterationReport| {
                r.states.iter().map(|(n, s)| (n.clone(), *s)).collect::<Vec<_>>()
            };
            assert_eq!(states(s), states(p), "iteration {t} plan");
            assert_eq!(
                (s.metrics.computed, s.metrics.loaded, s.metrics.pruned),
                (p.metrics.computed, p.metrics.loaded, p.metrics.pruned),
                "iteration {t} node resolution"
            );
        }
        let sigs = |s: &Session| {
            s.catalog().entries().iter().map(|e| e.signature.clone()).collect::<Vec<_>>()
        };
        assert_eq!(sigs(&serial), sigs(&pipelined), "final catalogs diverged");
    }

    #[test]
    fn background_writes_are_durable_after_sync() {
        let dir = std::env::temp_dir().join(format!(
            "helix-session-sync-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        let config = SessionConfig {
            catalog_dir: Some(dir.clone()),
            ..SessionConfig::in_memory().with_strategy(MatStrategy::Always)
        };
        let mut session = Session::new(config).unwrap();
        session.run(&scalar_chain(1)).unwrap();
        session.sync().unwrap();
        let entries = session.catalog().entries();
        assert_eq!(entries.len(), 3);
        for entry in &entries {
            assert!(dir.join(&entry.file).exists(), "synced write not durable: {}", entry.file);
        }
        drop(session);
        let reopened =
            helix_storage::MaterializationCatalog::open(&dir, DiskProfile::unthrottled()).unwrap();
        assert_eq!(reopened.len(), 3, "manifest sealed by sync");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn speculation_adopts_plans_on_stable_reruns() {
        // Four identical iterations: the speculation overlapping iteration
        // 2 (a pure-reuse rerun) sees exactly the state iteration 3 plans
        // against, so at least one speculative plan must survive
        // validation — and misses must never change results.
        let wfs: Vec<Workflow> = (0..4).map(|_| scalar_chain(1)).collect();
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let reports = session.run_pipelined(&wfs).unwrap();
        assert_eq!(reports.len(), 4);
        for report in &reports {
            assert_eq!(report.output_scalar("c").unwrap().as_f64(), Some(11.0));
        }
        let (hits, misses) = session.speculation_stats();
        assert!(hits >= 1, "stable rerun speculation must validate (hits={hits} misses={misses})");
        assert_eq!(hits + misses, 3, "one speculation per overlapped iteration");
    }

    #[test]
    fn history_accumulates() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        session.run(&scalar_chain(1)).unwrap();
        session.run(&scalar_chain(1)).unwrap();
        assert_eq!(session.history().len(), 2);
        assert_eq!(session.iterations_run(), 2);
    }
}
