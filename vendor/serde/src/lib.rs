//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so this vendored shim
//! provides the small slice of serde the workspace actually uses: a
//! [`Serialize`]/[`Deserialize`] pair of traits over an in-memory JSON
//! [`Json`] value, plus `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for plain named-field structs and fieldless enums (re-exported from the
//! vendored `serde_derive` proc-macro crate). `serde_json` (also vendored)
//! renders and parses the textual form.
//!
//! This is intentionally NOT a general serde: no serializer abstraction,
//! no zero-copy, no attributes. Swap in the real crates by deleting
//! `vendor/` and restoring the versions in each `Cargo.toml` once the
//! build environment has registry access.

pub use serde_derive::{Deserialize, Serialize};

mod json;

pub use json::{parse_json, write_json, write_json_compact, Json};

/// A value that can render itself as a [`Json`] tree.
pub trait Serialize {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

/// A value that can reconstruct itself from a [`Json`] tree.
pub trait Deserialize: Sized {
    /// Parse from a JSON value; errors are human-readable strings.
    fn from_json(value: &Json) -> Result<Self, String>;
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Json) -> Result<Self, String> {
                match value {
                    Json::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| format!("integer {i} out of range for {}", stringify!($t))),
                    other => Err(format!("expected integer, got {}", other.kind())),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128, i128);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Json) -> Result<Self, String> {
                match value {
                    Json::Float(f) => Ok(*f as $t),
                    Json::Int(i) => Ok(*i as $t),
                    other => Err(format!("expected number, got {}", other.kind())),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(value: &Json) -> Result<Self, String> {
        match value {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {}", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(value: &Json) -> Result<Self, String> {
        match value {
            Json::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {}", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &Json) -> Result<Self, String> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, String> {
        match value {
            Json::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(format!("expected array, got {}", other.kind())),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    )*};
}

tuple_impls! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_json(&self) -> Json {
        // Deterministic rendering: sort keys.
        let mut pairs: Vec<(String, Json)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Object(pairs)
    }
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn from_json(value: &Json) -> Result<Self, String> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u64::from_json(&42u64.to_json()).unwrap(), 42);
        assert_eq!(i64::from_json(&(-7i64).to_json()).unwrap(), -7);
        assert_eq!(String::from_json(&"hi".to_json()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_json(&5u32.to_json()).unwrap(), Some(5));
        assert_eq!(Vec::<u8>::from_json(&vec![1u8, 2].to_json()).unwrap(), vec![1, 2]);
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::from_json(&Json::Int(300)).is_err());
        assert!(u64::from_json(&Json::Int(-1)).is_err());
    }

    #[test]
    fn tuples_render_as_arrays() {
        let json = (1u64, 2u64, 3u64).to_json();
        match json {
            Json::Array(items) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {}", other.kind()),
        }
    }
}
