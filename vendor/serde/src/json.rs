//! The in-memory JSON tree, its renderer, and a small strict parser.

/// A JSON value. Integers are kept exact (i128) so u64 nanosecond counts
/// survive a manifest round trip bit-for-bit.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fraction or exponent.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered pairs (writers sort when they care).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Short type label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Float(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Look up an object key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Render `value` as pretty-printed JSON (2-space indent).
pub fn write_json(value: &Json) -> String {
    let mut out = String::new();
    write_inner(value, 0, &mut out);
    out
}

fn write_inner(value: &Json, indent: usize, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(f) => {
            if f.is_finite() {
                // Keep a fraction marker so the value re-parses as Float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Json::String(s) => write_escaped(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_inner(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Json::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_escaped(key, out);
                out.push_str(": ");
                write_inner(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
    }
}

/// Render `value` as compact JSON (no whitespace) — the framing used for
/// journal payloads, where every byte is CRC'd and hashed.
pub fn write_json_compact(value: &Json) -> String {
    let mut out = String::new();
    write_compact_inner(value, &mut out);
    out
}

fn write_compact_inner(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Json::String(s) => write_escaped(s, out),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact_inner(item, out);
            }
            out.push(']');
        }
        Json::Object(pairs) => {
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact_inner(val, out);
            }
            out.push('}');
        }
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut parser = Parser { chars: &bytes, pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.chars.len() {
        return Err(format!("trailing characters at offset {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(format!("expected '{c}', got '{got}' at offset {}", self.pos - 1)),
            None => Err(format!("expected '{c}', got end of input")),
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('n') => self.expect_word("null").map(|_| Json::Null),
            Some('t') => self.expect_word("true").map(|_| Json::Bool(true)),
            Some('f') => self.expect_word("false").map(|_| Json::Bool(false)),
            Some('"') => self.parse_string().map(Json::String),
            Some('[') => self.parse_array(),
            Some('{') => self.parse_object(),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(format!("unexpected character '{c}' at offset {}", self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self.bump().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + c.to_digit(16).ok_or_else(|| format!("bad hex digit '{c}'"))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    Some(c) => return Err(format!("unknown escape '\\{c}'")),
                    None => return Err("unterminated escape".to_string()),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => self.pos += 1,
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>().map(Json::Float).map_err(|e| format!("bad number '{text}': {e}"))
        } else {
            text.parse::<i128>().map(Json::Int).map_err(|e| format!("bad number '{text}': {e}"))
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Array(items)),
                Some(c) => return Err(format!("expected ',' or ']', got '{c}'")),
                None => return Err("unterminated array".to_string()),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Object(pairs)),
                Some(c) => return Err(format!("expected ',' or '}}', got '{c}'")),
                None => return Err("unterminated object".to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Json::Object(vec![
            ("name".into(), Json::String("hé\"llo\n".into())),
            ("count".into(), Json::Int(u64::MAX as i128)),
            ("ratio".into(), Json::Float(0.25)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("items".into(), Json::Array(vec![Json::Int(1), Json::Int(-2)])),
            ("empty_arr".into(), Json::Array(vec![])),
            ("empty_obj".into(), Json::Object(vec![])),
        ]);
        let text = write_json(&doc);
        let parsed = parse_json(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn u64_max_is_exact() {
        let text = write_json(&Json::Int(u64::MAX as i128));
        assert_eq!(parse_json(&text).unwrap(), Json::Int(u64::MAX as i128));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("\"abc").is_err());
    }

    #[test]
    fn float_reparses_as_float() {
        let text = write_json(&Json::Float(2.0));
        assert_eq!(parse_json(&text).unwrap(), Json::Float(2.0));
    }
}
