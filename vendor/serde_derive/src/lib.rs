//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` shim's simplified JSON model. Supports exactly the
//! shapes this workspace declares: non-generic structs with named fields
//! and non-generic fieldless enums. Anything else is a compile error with
//! a clear message — extend this shim before reaching for attributes or
//! generics.
//!
//! Written against raw `proc_macro` tokens (no syn/quote: the build
//! environment has no registry access), generating code by string
//! rendering.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Derive `serde::Serialize` (shim edition).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::Json {{\n\
                         ::serde::Json::Object(::std::vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String =
                variants.iter().map(|v| format!("{name}::{v} => \"{v}\",")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::Json {{\n\
                         ::serde::Json::String(::std::string::String::from(\
                             match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive shim generated invalid Rust")
}

/// Derive `serde::Deserialize` (shim edition).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json(\
                             __v.get(\"{f}\").unwrap_or(&::serde::Json::Null))\
                         .map_err(|e| ::std::format!(\"{name}.{f}: {{}}\", e))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json(__v: &::serde::Json) \
                         -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         if !::std::matches!(__v, ::serde::Json::Object(_)) {{\n\
                             return ::std::result::Result::Err(::std::format!(\
                                 \"{name}: expected object, got {{}}\", __v.kind()));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json(__v: &::serde::Json) \
                         -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         match __v {{\n\
                             ::serde::Json::String(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::std::format!(\
                                     \"{name}: unknown variant {{other:?}}\")),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::std::format!(\
                                 \"{name}: expected string, got {{}}\", other.kind())),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive shim generated invalid Rust")
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        match tokens.get(i) {
            None => panic!("serde_derive shim: no struct or enum found in derive input"),
            // Outer attribute: `#` followed by a bracketed group.
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) and friends
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let (name, body) = parse_name_and_body(&tokens, i + 1, "struct");
                return Item::Struct { name, fields: parse_fields(body) };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let (name, body) = parse_name_and_body(&tokens, i + 1, "enum");
                return Item::Enum { name, variants: parse_variants(body) };
            }
            Some(_) => {
                i += 1;
            }
        }
    }
}

fn parse_name_and_body<'a>(
    tokens: &'a [TokenTree],
    mut i: usize,
    kw: &str,
) -> (String, &'a proc_macro::Group) {
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected {kw} name, got {other:?}"),
    };
    i += 1;
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive shim: generic {kw} `{name}` is not supported")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => (name, g),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde_derive shim: tuple struct `{name}` is not supported")
        }
        other => panic!("serde_derive shim: expected body of `{name}`, got {other:?}"),
    }
}

/// Split a brace-group body at top-level commas. Commas nested inside
/// generic arguments (`BTreeMap<String, u64>`) do not split: angle
/// brackets arrive as plain puncts, so depth is tracked explicitly.
fn split_top_level(body: &proc_macro::Group) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for token in body.stream() {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                chunks.last_mut().unwrap().push(token);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                chunks.last_mut().unwrap().push(token);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new())
            }
            _ => chunks.last_mut().unwrap().push(token),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_fields(body: &proc_macro::Group) -> Vec<String> {
    split_top_level(body)
        .iter()
        .map(|chunk| {
            leading_ident(chunk).unwrap_or_else(|| {
                panic!("serde_derive shim: could not find a field name in {chunk:?}")
            })
        })
        .collect()
}

fn parse_variants(body: &proc_macro::Group) -> Vec<String> {
    split_top_level(body)
        .iter()
        .map(|chunk| {
            if chunk.iter().any(|t| {
                matches!(t, TokenTree::Group(g)
                if g.delimiter() != Delimiter::Bracket)
            }) {
                panic!("serde_derive shim: only fieldless enum variants are supported");
            }
            leading_ident(chunk).unwrap_or_else(|| {
                panic!("serde_derive shim: could not find a variant name in {chunk:?}")
            })
        })
        .collect()
}

/// First identifier after attributes and visibility.
fn leading_ident(chunk: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    loop {
        match chunk.get(i)? {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => return Some(id.to_string()),
            _ => return None,
        }
    }
}
