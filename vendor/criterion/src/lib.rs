//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim implements
//! the slice of criterion's API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `BatchSize`, `iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! warmup-then-sample measurement loop and plain-text reporting.
//!
//! It is a measurement tool, not a statistics suite: each benchmark is
//! timed over `sample_size` samples after calibration and the median,
//! minimum, and mean per-iteration times are printed. Good enough to
//! compare 1/2/4/8-worker engine configurations; swap in real criterion
//! when the environment can fetch it.

use std::time::{Duration, Instant};

/// Target wall-clock budget per benchmark (calibration picks the
/// iterations-per-sample to roughly fill it).
const MEASURE_BUDGET: Duration = Duration::from_millis(500);

/// How a sample batch is sized (shim: only used to pick batch behavior).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per routine invocation.
    PerIteration,
    /// Small batches.
    SmallInput,
    /// Large batches.
    LargeInput,
}

/// Declared throughput for a benchmark (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Just the parameter (the group name provides context).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Nanoseconds per iteration for each sample.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher { sample_size, samples: Vec::new() }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fit one sample slot?
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let budget_per_sample = MEASURE_BUDGET / self.sample_size as u32;
        let iters = (budget_per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` with a fresh `setup` product per invocation; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size.max(1) {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(name: &str, samples: &mut [f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    let mut line = format!(
        "{name:<40} median {:>12}  min {:>12}  mean {:>12}",
        fmt_nanos(median),
        fmt_nanos(min),
        fmt_nanos(mean)
    );
    if let Some(tp) = throughput {
        let per_sec = |units: u64| units as f64 / (median / 1e9);
        match tp {
            Throughput::Bytes(b) => {
                line.push_str(&format!("  {:.1} MiB/s", per_sec(b) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(e) => {
                line.push_str(&format!("  {:.0} elem/s", per_sec(e)));
            }
        }
    }
    println!("{line}");
}

/// Shim of criterion's top-level driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), self.sample_size, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            prefix: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Criterion's configuration hook (shim: sets default sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }
}

/// A group of benchmarks sharing a prefix and configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare throughput for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id);
        run_one(&name, self.sample_size, self.throughput, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id);
        run_one(&name, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (shim: purely cosmetic).
    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher::new(sample_size);
    f(&mut bencher);
    report(name, &mut bencher.samples, throughput);
}

/// Re-export so `criterion::black_box` callers work; prefer
/// `std::hint::black_box` in new code.
pub use std::hint::black_box;

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `fn main` running the listed groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.sample_size(3);
        // Smoke: should not panic and should print one line.
        c.bench_function("shim_smoke", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("case", 4), &4, |b, &n| b.iter(|| n * 2));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        g.finish();
        assert_eq!(BenchmarkId::new("a", 1).to_string(), "a/1");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
