//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the subset of the parking_lot API the workspace uses,
//! backed by `std::sync`. Semantics match parking_lot where it matters
//! here: `lock()` does not return a `Result` and never poisons — a lock
//! held by a panicking thread is simply recovered.

use std::sync::TryLockError;

/// A mutex with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard for shared access.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for exclusive access.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire exclusive access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_recovers_after_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: still lockable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
