//! Offline stand-in for the `serde_json` crate, built on the vendored
//! `serde` shim's [`serde::Json`] tree. Provides the entry points the
//! workspace uses: [`to_string_pretty`], [`to_vec`], [`from_str`], and
//! [`from_slice`].

/// Error type mirroring `serde_json::Error`'s role (display-only here).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render any serializable value as pretty-printed JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::write_json(&value.to_json()))
}

/// Render any serializable value as compact (whitespace-free) JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(serde::write_json_compact(&value.to_json()).into_bytes())
}

/// Parse a JSON document into a deserializable value.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let json = serde::parse_json(text).map_err(Error)?;
    T::from_json(&json).map_err(Error)
}

/// Parse a JSON document from raw bytes (must be valid UTF-8).
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| Error(format!("invalid utf-8 in JSON document: {e}")))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Entry {
        name: String,
        bytes: u64,
        load: Option<u64>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Manifest {
        entries: Vec<Entry>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Alpha,
        Beta,
    }

    #[test]
    fn derived_struct_roundtrip() {
        let m = Manifest {
            entries: vec![
                Entry { name: "a".into(), bytes: u64::MAX, load: None },
                Entry { name: "b\"x".into(), bytes: 0, load: Some(17) },
            ],
        };
        let text = super::to_string_pretty(&m).unwrap();
        let back: Manifest = super::from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn derived_enum_roundtrip() {
        let text = super::to_string_pretty(&Kind::Beta).unwrap();
        assert_eq!(text, "\"Beta\"");
        let back: Kind = super::from_str(&text).unwrap();
        assert_eq!(back, Kind::Beta);
        assert!(super::from_str::<Kind>("\"Gamma\"").is_err());
    }

    #[test]
    fn missing_field_errors() {
        let err = super::from_str::<Entry>("{\"name\": \"x\"}").unwrap_err();
        assert!(err.to_string().contains("Entry.bytes"), "{err}");
    }
}
