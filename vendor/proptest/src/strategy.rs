//! The [`Strategy`] trait and its combinators.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one concrete value from the deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build from pre-boxed arms; panics on an empty list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.0.len() as u64) as usize;
        self.0[ix].generate(rng)
    }
}

/// Types a `Range`/`RangeInclusive` strategy can sample.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range");
                let width = (hi as i128 - lo as i128) as u128;
                (lo as i128 + rng.below_u128(width) as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below_u128(width) as i128) as $t
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        assert!(lo < hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }

    fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        assert!(lo <= hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop_oneof;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (5u32..9).generate(&mut rng);
            assert!((5..9).contains(&v));
            let w = (1u8..=255).generate(&mut rng);
            assert!(w >= 1);
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let n = (-10i64..10).generate(&mut rng);
            assert!((-10..10).contains(&n));
        }
    }

    #[test]
    fn map_and_flat_map() {
        let mut rng = TestRng::new(9);
        let doubled = (1u64..10).prop_map(|v| v * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && doubled < 20);
        let nested = (1usize..4).prop_flat_map(|n| 0u64..(n as u64 + 1));
        for _ in 0..100 {
            assert!(nested.generate(&mut rng) < 4);
        }
    }

    #[test]
    fn union_hits_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
