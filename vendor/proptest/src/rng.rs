//! The deterministic RNG behind every strategy (SplitMix64).

/// A deterministic PRNG; same seed → same stream on every platform.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded directly.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seeded from a test name (FNV-1a), so each test gets a stable,
    /// distinct stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(hash)
    }

    /// Next raw 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform below `bound` (0 when bound is 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform below `bound` over the u128 domain.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        if bound == 0 {
            return 0;
        }
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let a: Vec<u64> = {
            let mut rng = TestRng::deterministic("some_test");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::deterministic("some_test");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut rng = TestRng::deterministic("other_test");
        assert_ne!(a[0], rng.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(rng.below(0), 0);
    }
}
