//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim implements
//! the slice of proptest the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, `Just`,
//! `any::<T>()`, numeric range strategies, simple `[class]{m,n}` string
//! strategies, `prop::collection::{vec, hash_set}`, `prop::option::of`,
//! `prop::bool::ANY`, tuple strategies, `prop_oneof!`, and the
//! `proptest!` test macro with `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   left to the assertion message; the RNG is deterministic (seeded from
//!   the test name), so failures reproduce exactly.
//! * **String strategies** accept only the `[chars]{m,n}` regex shape the
//!   workspace uses, not full regex syntax.
//! * `prop_assert*` are plain `assert*` (panic, no `TestCaseError`).

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod option;
pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors proptest's `prelude::prop` module grab-bag.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Shim of `prop_assert!`: plain assert (no shrinking to report back to).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Shim of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Shim of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// The `proptest!` test-generation macro.
///
/// Each declared test becomes an ordinary `#[test]` fn running
/// `config.cases` deterministic cases; the RNG seed derives from the test
/// name so every run (and every machine) sees the same inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!{@impl $config; $($rest)*}
    };
    (@impl $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut __rng =
                    $crate::rng::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@impl $crate::test_runner::ProptestConfig::default(); $($rest)*}
    };
}
