//! `prop::option::of` — optional values.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy yielding `None` or `Some(inner)`.
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Real proptest defaults to 50% None at this call shape's default
        // weight; keep the stream deterministic and unbiased.
        if rng.chance(0.5) {
            Some(self.0.generate(rng))
        } else {
            None
        }
    }
}

/// `prop::option::of(strategy)`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_both_variants() {
        let s = of(0u8..10);
        let mut rng = TestRng::new(2);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 50 && none > 50, "some={some} none={none}");
    }
}
