//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_sign_and_parity() {
        let mut rng = TestRng::new(1);
        let mut saw_negative = false;
        let mut saw_odd = false;
        for _ in 0..64 {
            saw_negative |= any::<i64>().generate(&mut rng) < 0;
            saw_odd |= any::<u64>().generate(&mut rng) % 2 == 1;
        }
        assert!(saw_negative && saw_odd);
    }
}
