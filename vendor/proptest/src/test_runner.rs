//! Test-runner configuration.

/// Mirrors `proptest::test_runner::ProptestConfig` (the one knob used).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[cfg(test)]
mod tests {
    // End-to-end check of the proptest! macro plumbing.
    crate::proptest! {
        #![proptest_config(crate::test_runner::ProptestConfig::with_cases(16))]

        /// Squares are non-negative (macro smoke test).
        #[test]
        fn squares_nonnegative(x in -100i64..100, flip in crate::prelude::prop::bool::ANY) {
            crate::prop_assert!(x * x >= 0);
            let y = if flip { x } else { -x };
            crate::prop_assert_eq!(y * y, x * x);
        }
    }
}
