//! `prop::bool` — boolean strategies.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy over both booleans.
#[derive(Clone, Copy, Debug)]
pub struct Any;

/// `prop::bool::ANY`.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_values_occur() {
        let mut rng = TestRng::new(5);
        let mut t = false;
        let mut f = false;
        for _ in 0..64 {
            if ANY.generate(&mut rng) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }
}
