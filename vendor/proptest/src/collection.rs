//! Collection strategies: `vec` and `hash_set`.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Anything usable as a collection size specification.
pub trait SizeRange {
    /// Draw a target length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
    /// Largest admissible length (for duplicate-capped collections).
    fn max_len(&self) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }

    fn max_len(&self) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }

    fn max_len(&self) -> usize {
        self.end.saturating_sub(1)
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `sizes`.
pub struct VecStrategy<S, R> {
    element: S,
    sizes: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.sizes.sample_len(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, sizes)`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, sizes: R) -> VecStrategy<S, R> {
    VecStrategy { element, sizes }
}

/// Strategy for `HashSet<T>`.
pub struct HashSetStrategy<S, R> {
    element: S,
    sizes: R,
}

impl<S, R> Strategy for HashSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Eq + Hash,
    R: SizeRange,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.sizes.sample_len(rng);
        let mut out = HashSet::with_capacity(target);
        // The element domain may be smaller than the target; cap the
        // attempts so generation always terminates.
        let mut attempts = 0;
        while out.len() < target && attempts < 20 * (target + 1) {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// `prop::collection::hash_set(element, sizes)`.
pub fn hash_set<S, R>(element: S, sizes: R) -> HashSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Eq + Hash,
    R: SizeRange,
{
    HashSetStrategy { element, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_len_in_range() {
        let s = vec(0u8..10, 2..5);
        let mut rng = TestRng::new(4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    #[test]
    fn vec_fixed_len() {
        let s = vec(0u8..10, 3usize);
        let mut rng = TestRng::new(4);
        assert_eq!(s.generate(&mut rng).len(), 3);
    }

    #[test]
    fn hash_set_terminates_with_tiny_domain() {
        let s = hash_set(0u8..2, 1..10);
        let mut rng = TestRng::new(4);
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(!set.is_empty() && set.len() <= 2);
        }
    }
}
