//! String strategies from `[class]{m,n}` patterns.
//!
//! Real proptest compiles full regexes into strategies; this workspace
//! only uses single-character-class patterns with a repetition count, so
//! that's exactly what the shim parses. Unsupported patterns panic with a
//! pointer to this file.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Parsed `[class]{m,n}` pattern.
struct CharClassPattern {
    alphabet: Vec<char>,
    min_len: usize,
    max_len: usize,
}

fn unsupported(pattern: &str) -> ! {
    panic!(
        "proptest shim: unsupported string pattern {pattern:?}; only \
         `[chars]{{m,n}}` shapes are implemented (vendor/proptest/src/string.rs)"
    )
}

fn parse_pattern(pattern: &str) -> CharClassPattern {
    let Some(rest) = pattern.strip_prefix('[') else { unsupported(pattern) };
    let Some(close) = rest.find(']') else { unsupported(pattern) };
    let class: Vec<char> = rest[..close].chars().collect();
    let Some(counts) = rest[close + 1..].strip_prefix('{').and_then(|s| s.strip_suffix('}')) else {
        unsupported(pattern)
    };
    let parse_len = |s: &str| -> usize {
        match s.parse() {
            Ok(n) => n,
            Err(_) => unsupported(pattern),
        }
    };
    let (min_len, max_len) = match counts.split_once(',') {
        Some((lo, hi)) => (parse_len(lo), parse_len(hi)),
        None => {
            let n = parse_len(counts);
            (n, n)
        }
    };

    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range (a `-` without both neighbors is a literal).
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                unsupported(pattern);
            }
            alphabet.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() || min_len > max_len {
        unsupported(pattern);
    }
    CharClassPattern { alphabet, min_len, max_len }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = parse_pattern(self);
        let span = (pattern.max_len - pattern.min_len + 1) as u64;
        let len = pattern.min_len + rng.below(span) as usize;
        (0..len)
            .map(|_| pattern.alphabet[rng.below(pattern.alphabet.len() as u64) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_within_class_and_length() {
        let mut rng = TestRng::new(6);
        for _ in 0..200 {
            let s = "[a-zA-Z0-9 _-]{0,24}".generate(&mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '_' || c == '-'));
        }
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn exact_count_form() {
        let mut rng = TestRng::new(6);
        assert_eq!("[x]{4}".generate(&mut rng), "xxxx");
    }
}
