//! # helix
//!
//! Façade crate for the HELIX reproduction workspace (VLDB 2018,
//! "HELIX: Holistic Optimization for Accelerating Iterative Machine
//! Learning"). Re-exports the member crates under one roof and hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`).
//!
//! Start with [`prelude`]:
//!
//! ```
//! use helix::prelude::*;
//! use helix::data::{Scalar, Value};
//!
//! let mut wf = Workflow::new("hello");
//! let x = wf.source("x", 1, |_| Ok(Value::Scalar(Scalar::F64(21.0))));
//! let y = wf.reduce("y", x, 1, |v, _| {
//!     let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
//!     Ok(Value::Scalar(Scalar::F64(2.0 * x)))
//! });
//! wf.output(y);
//!
//! let mut session = Session::new(SessionConfig::in_memory()).unwrap();
//! let report = session.run(&wf).unwrap();
//! assert_eq!(report.output_scalar("y").unwrap().as_f64(), Some(42.0));
//! ```
//!
//! Crate map: [`common`] (hashing, RNG, errors) · [`data`] (records,
//! features, examples, models) · [`flow`] (DAG, max-flow, OPT-EXEC-PLAN) ·
//! [`storage`] (codec, catalog, disk emulation) · [`exec`] (pool, core
//! budget, cache, metrics) · [`core`] (DSL, tracker, optimizers, engine,
//! session) · [`workloads`] (the four paper workloads + iteration
//! simulator) · [`serve`] (the multi-tenant session service: shared core
//! budget, shared catalog with per-tenant quotas, admission control —
//! see `examples/shared_service.rs`) · [`obs`] (spans, metrics, Chrome
//! trace export — provably inert, see `tests/observability_inertness.rs`).

pub use helix_common as common;
pub use helix_core as core;
pub use helix_data as data;
pub use helix_exec as exec;
pub use helix_flow as flow;
pub use helix_ml as ml;
pub use helix_obs as obs;
pub use helix_serve as serve;
pub use helix_storage as storage;
pub use helix_workloads as workloads;

/// One-stop imports for workflow authors.
pub mod prelude {
    pub use helix_core::prelude::*;
}
