//! Quickstart: declare a tiny workflow, run it twice, and watch HELIX
//! reuse materialized intermediates on the second iteration.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use helix_core::prelude::*;
use helix_data::{FieldValue, Record, RecordBatch, Scalar, Schema, Value};

fn build_workflow(reducer_version: u64) -> Workflow {
    let mut wf = Workflow::new("quickstart");

    // A data source: any closure producing a Value. Bump the version token
    // to tell HELIX "the data changed".
    let data = wf.source("data", 1, |_ctx| {
        let schema = Schema::new(["x", "label"]);
        let rows: Vec<Record> = (0..1_000)
            .map(|i| {
                let x = i as f64 / 100.0;
                Record::train(vec![FieldValue::Float(x), FieldValue::Int(i64::from(x > 5.0))])
            })
            .collect();
        Ok(Value::records(RecordBatch::new(schema, rows)?))
    });

    // DPR: extract and discretize features, assemble examples.
    let x = wf.bucketizer("xBucket", data, "x", 8);
    let label = wf.field_extractor("label", data, "label");
    let examples = wf.examples("examples", data, &[x], Some(label));

    // L/I: train a logistic model and score the data.
    let model = wf.learner(
        "model",
        examples,
        helix_core::ops::Algo::LogisticRegression { l2: 0.1, epochs: 10 },
    );
    let scored = wf.predict("scored", model, examples);

    // PPR: a custom reducer; its version token makes edits visible to
    // HELIX's change tracker.
    let summary = wf.reduce("summary", scored, reducer_version, |v, _ctx| {
        let batch = v.as_collection()?.as_examples()?;
        let positives =
            batch.examples.iter().filter(|e| e.prediction.unwrap_or(0.0) >= 0.5).count();
        Ok(Value::Scalar(Scalar::Metrics(vec![("predicted_positive".into(), positives as f64)])))
    });
    wf.output(summary);
    wf
}

fn main() -> helix_common::Result<()> {
    let mut session = Session::new(SessionConfig::in_memory())?;

    // Iteration 0: everything computes.
    let first = session.run(&build_workflow(1))?;
    println!(
        "iteration 0: {} computed / {} loaded / {} pruned, took {} ms",
        first.metrics.computed,
        first.metrics.loaded,
        first.metrics.pruned,
        first.metrics.total_nanos() / 1_000_000
    );

    // Iteration 1: only the edited reducer recomputes; everything upstream
    // is reused or pruned.
    let second = session.run(&build_workflow(2))?;
    println!(
        "iteration 1: {} computed / {} loaded / {} pruned, took {} ms",
        second.metrics.computed,
        second.metrics.loaded,
        second.metrics.pruned,
        second.metrics.total_nanos() / 1_000_000
    );
    println!(
        "summary: {:?}",
        second.output_scalar("summary").and_then(|s| s.metric("predicted_positive"))
    );

    assert!(second.metrics.computed < first.metrics.computed);
    println!("cross-iteration reuse worked: fewer operators recomputed.");
    Ok(())
}
