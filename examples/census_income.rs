//! The paper's running example (Figure 3a): income prediction over census
//! data, iterated the way §6.3 simulates a developer — a DPR change, an
//! L/I change, then PPR changes — under HELIX OPT.
//!
//! ```bash
//! cargo run --release --example census_income
//! ```

use helix_core::prelude::*;
use helix_workloads::{run_iterations, CensusWorkload, ChangeKind, Workload};

fn main() -> helix_common::Result<()> {
    let mut session = Session::new(SessionConfig::in_memory())?;
    let mut workload = CensusWorkload::default();

    println!("census workflow: {} operators", workload.build().len());
    println!("DAG:\n{}", workload.build().to_dot());

    let changes =
        [ChangeKind::Dpr, ChangeKind::LI, ChangeKind::Ppr, ChangeKind::Ppr, ChangeKind::Ppr];
    let reports = run_iterations(&mut session, &mut workload, &changes)?;

    println!("iter  change  time(ms)  computed  loaded  pruned  accuracy");
    for (i, report) in reports.iter().enumerate() {
        let change = if i == 0 { "init" } else { changes[i - 1].label() };
        let accuracy =
            report.output_scalar("checked").and_then(|s| s.metric("accuracy")).unwrap_or(f64::NAN);
        println!(
            "{:<6}{:<8}{:<10}{:<10}{:<8}{:<8}{:.3}",
            i,
            change,
            report.metrics.total_nanos() / 1_000_000,
            report.metrics.computed,
            report.metrics.loaded,
            report.metrics.pruned,
            accuracy,
        );
    }

    let first = reports.first().unwrap().metrics.total_nanos();
    let last = reports.last().unwrap().metrics.total_nanos();
    println!(
        "\nPPR iteration is {:.0}x faster than the initial run thanks to reuse.",
        first as f64 / last.max(1) as f64
    );
    println!(
        "catalog: {} artifacts, {} bytes",
        session.catalog().len(),
        session.catalog().total_bytes()
    );
    Ok(())
}
