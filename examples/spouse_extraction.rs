//! The IE workflow (DeepDive's spouse example): extract spouse pairs from
//! news text with distant supervision, then iterate on feature engineering
//! the way the paper's NLP developers do — every iteration is a DPR change
//! and the expensive parse is never recomputed.
//!
//! ```bash
//! cargo run --release --example spouse_extraction
//! ```

use helix_core::prelude::*;
use helix_flow::oep::State;
use helix_workloads::{run_iterations, ChangeKind, IeWorkload};

fn main() -> helix_common::Result<()> {
    let mut session = Session::new(SessionConfig::in_memory())?;
    let mut workload = IeWorkload::default();

    let changes = vec![ChangeKind::Dpr; 5];
    let reports = run_iterations(&mut session, &mut workload, &changes)?;

    println!("iter  time(ms)  parse-state  precision  recall  f1");
    for (i, report) in reports.iter().enumerate() {
        let parse = report.states.iter().find(|(n, _)| n == "candidates").map(|(_, s)| *s).unwrap();
        let f1 = report.output_scalar("extractionF1").unwrap();
        println!(
            "{:<6}{:<10}{:<13}{:<11.3}{:<8.3}{:.3}",
            i,
            report.metrics.total_nanos() / 1_000_000,
            format!("{parse:?}"),
            f1.metric("precision").unwrap_or(0.0),
            f1.metric("recall").unwrap_or(0.0),
            f1.metric("f1").unwrap_or(0.0),
        );
        if i > 0 {
            assert_ne!(parse, State::Compute, "the NLP parse must be reused after iteration 0");
        }
    }

    let extracted = reports
        .last()
        .unwrap()
        .output_scalar("extractedPairs")
        .and_then(|s| s.metric("extracted"))
        .unwrap_or(0.0);
    println!("\nfinal model extracts {extracted} candidate spouse pairs from the corpus.");
    Ok(())
}
