//! Two tenants, one service: shared cores, shared artifacts.
//!
//! Alice and Bob both iterate on the census workflow. The service owns
//! one core budget and one materialization catalog, so:
//!
//! * their concurrent iterations split the same cores (no `workers²`
//!   thread blowup), and
//! * Bob's first iteration *loads* the intermediates Alice already
//!   computed — cross-tenant reuse through signature equivalence — then
//!   each tenant's own reruns reuse as usual.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example shared_service
//! ```

use helix::core::SessionConfig;
use helix::serve::{HelixService, ServiceConfig, TenantSpec};
use helix::workloads::{CensusWorkload, Workload};

fn main() -> helix::common::Result<()> {
    // A service with 4 core tokens and the default storage budget.
    let service = HelixService::new(ServiceConfig::new(4).with_seed(7))?;
    service.register_tenant("alice", TenantSpec::default().with_quota(16 << 20))?;
    service.register_tenant("bob", TenantSpec::default().with_quota(16 << 20))?;

    let alice = service.open_session("alice", SessionConfig::in_memory().with_workers(4))?;
    let bob = service.open_session("bob", SessionConfig::in_memory().with_workers(4))?;

    // Alice explores first: everything is computed from scratch.
    let mut alice_wl = CensusWorkload::small();
    let report = alice.run_iteration(alice_wl.build())?;
    println!(
        "alice iteration 0: computed {:>2}, loaded {:>2} ({} ms)",
        report.metrics.computed,
        report.metrics.loaded,
        report.metrics.total_nanos() / 1_000_000
    );

    // Bob starts the same workflow: the shared catalog already holds
    // every intermediate under the same signatures, so Bob loads.
    let bob_wl = CensusWorkload::small();
    let report = bob.run_iteration(bob_wl.build())?;
    println!(
        "bob   iteration 0: computed {:>2}, loaded {:>2}, cross-tenant {:>2} ({} ms)",
        report.metrics.computed,
        report.metrics.loaded,
        report.metrics.cross_loaded,
        report.metrics.total_nanos() / 1_000_000
    );

    // Alice keeps iterating (a postprocessing tweak): only the changed
    // suffix recomputes, and Bob's artifacts are untouched.
    alice_wl.apply_change(helix::workloads::ChangeKind::Ppr);
    let report = alice.run_iteration(alice_wl.build())?;
    println!(
        "alice iteration 1: computed {:>2}, loaded {:>2} ({} ms)",
        report.metrics.computed,
        report.metrics.loaded,
        report.metrics.total_nanos() / 1_000_000
    );

    let stats = service.stats();
    println!("\nservice stats:");
    println!(
        "  cores: peak {} of {} leased   catalog: {} artifacts, {} KiB",
        stats.peak_cores_leased,
        stats.cores_total,
        stats.catalog_artifacts,
        stats.catalog_bytes / 1024
    );
    for (name, t) in &stats.tenants {
        println!(
            "  {name:>6}: {} iterations, self-hits {}, cross-hits {} (cross rate {:.0}%), \
             {} KiB of {} KiB quota",
            t.iterations,
            t.self_hits,
            t.cross_hits,
            t.cross_hit_rate() * 100.0,
            t.owned_bytes / 1024,
            t.quota_bytes / 1024,
        );
    }
    Ok(())
}
