//! Compare the three materialization policies of paper §6.6 — OPT
//! (Algorithm 2), AM (always materialize), NM (never materialize) — on the
//! same iteration schedule, reporting run time *and* storage, i.e. a
//! miniature of paper Figure 9.
//!
//! ```bash
//! cargo run --release --example materialization_tradeoffs
//! ```

use helix_core::prelude::*;
use helix_storage::DiskProfile;
use helix_workloads::{run_iterations, CensusWorkload, Workload};

fn main() -> helix_common::Result<()> {
    // Throwaway warmup run so the first measured policy does not absorb
    // process cold-start costs (page cache, allocator).
    {
        let mut session = Session::new(SessionConfig::in_memory())?;
        session.run(&CensusWorkload::small().build())?;
    }

    println!("policy   cumulative(ms)  storage(KiB)  writes(KiB)");
    for (label, strategy) in
        [("OPT", MatStrategy::Opt), ("AM ", MatStrategy::Always), ("NM ", MatStrategy::Never)]
    {
        let config =
            SessionConfig::in_memory().with_strategy(strategy).with_disk(DiskProfile::paper_hdd());
        let mut session = Session::new(config)?;
        let mut workload = CensusWorkload::default();
        let changes = workload.scripted_sequence();
        let reports = run_iterations(&mut session, &mut workload, &changes)?;

        let cumulative: u64 =
            reports.iter().map(|r| r.metrics.total_nanos()).sum::<u64>() / 1_000_000;
        let written: u64 = reports.iter().map(|r| r.metrics.materialized_bytes).sum::<u64>() / 1024;
        println!(
            "{label}      {:<16}{:<14}{written}",
            cumulative,
            session.catalog().total_bytes() / 1024,
        );
    }
    println!(
        "\nOPT should finish fastest; AM pays write overhead for the same reuse;\n\
         NM stores nothing and recomputes everything (paper Figure 9)."
    );
    Ok(())
}
