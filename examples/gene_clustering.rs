//! The Genomics workflow of paper Example 1: mine literature for
//! gene–disease structure by embedding tokens with word2vec and clustering
//! knowledge-base genes with k-means. Demonstrates the paper's headline
//! interaction: changing the cluster count (an L/I edit) reuses the
//! expensive embeddings.
//!
//! ```bash
//! cargo run --release --example gene_clustering
//! ```

use helix_core::prelude::*;
use helix_flow::oep::State;
use helix_workloads::{GenomicsWorkload, Workload};

fn main() -> helix_common::Result<()> {
    let mut session = Session::new(SessionConfig::in_memory())?;
    let mut workload = GenomicsWorkload::default();

    let first = session.run(&workload.build())?;
    let quality = first.output_scalar("clusterQuality").unwrap();
    println!(
        "initial run: {} ms, NMI vs planted clusters = {:.3} over {} genes",
        first.metrics.total_nanos() / 1_000_000,
        quality.metric("nmi").unwrap_or(0.0),
        quality.metric("genes_clustered").unwrap_or(0.0),
    );

    // Example 1(v): "tweak the number of clusters to control granularity".
    workload.k = 6;
    let second = session.run(&workload.build())?;
    let w2v_state = second.states.iter().find(|(n, _)| n == "word2vec").map(|(_, s)| *s).unwrap();
    println!(
        "k=6 rerun: {} ms (word2vec state: {:?})",
        second.metrics.total_nanos() / 1_000_000,
        w2v_state,
    );
    assert_ne!(w2v_state, State::Compute, "embeddings must be reused, not retrained");

    for (name, value) in second.outputs.iter() {
        if let Ok(scalar) = value.as_scalar() {
            println!("  output {name}: {scalar:?}");
        }
    }
    println!(
        "\nreusing word2vec made the k-change {:.0}x cheaper than the initial run.",
        first.metrics.total_nanos() as f64 / second.metrics.total_nanos().max(1) as f64
    );
    Ok(())
}
